#include "cycle/catalog.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "telemetry/json.hpp"
#include "util/error.hpp"
#include "util/md5.hpp"

namespace awp::cycle {

namespace {

// Fixed-width little-endian append helpers (the spec-encoding idiom:
// doubles hash by IEEE-754 bit pattern, never by formatting).
void putU64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

void putI32(std::vector<std::byte>& out, std::int32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(
        static_cast<std::byte>((static_cast<std::uint32_t>(v) >> (8 * i)) &
                               0xff));
}

void putF64(std::vector<std::byte>& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  putU64(out, bits);
}

void putString(std::vector<std::byte>& out, const std::string& s) {
  putU64(out, s.size());
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  out.insert(out.end(), p, p + s.size());
}

void putDoubles(std::vector<std::byte>& out, const std::vector<double>& v) {
  putU64(out, v.size());
  for (double x : v) putF64(out, x);
}

constexpr char kEventMagic[8] = {'A', 'W', 'P', 'C', 'Y', 'E', 'V', '1'};
constexpr char kCatalogMagic[8] = {'A', 'W', 'P', 'C', 'Y', 'C', 'A', '1'};

std::string fmtDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool isHex32(const std::string& s) {
  if (s.size() != 32) return false;
  for (char c : s)
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  return true;
}

}  // namespace

std::vector<std::byte> CycleEvent::canonicalBytes() const {
  std::vector<std::byte> out;
  out.reserve(64 + 24 * nx * nz);
  const auto* m = reinterpret_cast<const std::byte*>(kEventMagic);
  out.insert(out.end(), m, m + sizeof(kEventMagic));
  putI32(out, index);
  putF64(out, onsetSeconds);
  putF64(out, durationSeconds);
  putF64(out, peakSlipRate);
  putF64(out, momentNm);
  putF64(out, magnitude);
  putU64(out, static_cast<std::uint64_t>(nucI));
  putU64(out, static_cast<std::uint64_t>(nucK));
  putF64(out, tauCloseNuc);
  putU64(out, static_cast<std::uint64_t>(nx));
  putU64(out, static_cast<std::uint64_t>(nz));
  putF64(out, cell);
  putDoubles(out, tau);
  putDoubles(out, sigmaN);
  putDoubles(out, theta);
  return out;
}

std::string CycleEvent::computeDigest() const {
  const auto bytes = canonicalBytes();
  return Md5::hexDigest(bytes.data(), bytes.size());
}

std::vector<std::byte> CycleCatalog::canonicalBytes() const {
  std::vector<std::byte> out;
  const auto* m = reinterpret_cast<const std::byte*>(kCatalogMagic);
  out.insert(out.end(), m, m + sizeof(kCatalogMagic));
  putU64(out, static_cast<std::uint64_t>(nx));
  putU64(out, static_cast<std::uint64_t>(nz));
  putF64(out, cell);
  putF64(out, years);
  putU64(out, seed);
  putU64(out, steps);
  putU64(out, rows.size());
  for (const CycleCatalogRow& row : rows) {
    putI32(out, row.index);
    putF64(out, row.onsetSeconds);
    putF64(out, row.durationSeconds);
    putF64(out, row.magnitude);
    putF64(out, row.momentNm);
    putF64(out, row.peakSlipRate);
    putString(out, row.eventDigest);
    putString(out, row.specHash);
    putString(out, row.productDigest);
    putString(out, row.phase);
    putI32(out, row.completions);
  }
  return out;
}

std::string CycleCatalog::digestHex() const {
  const auto bytes = canonicalBytes();
  return Md5::hexDigest(bytes.data(), bytes.size());
}

std::string toJson(const CycleCatalog& catalog) {
  using telemetry::escapeJson;
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"awp-cycle-catalog\",\n";
  os << "  \"version\": 1,\n";
  os << "  \"nx\": " << catalog.nx << ",\n";
  os << "  \"nz\": " << catalog.nz << ",\n";
  os << "  \"cell\": " << fmtDouble(catalog.cell) << ",\n";
  os << "  \"years\": " << fmtDouble(catalog.years) << ",\n";
  os << "  \"seed\": " << catalog.seed << ",\n";
  os << "  \"steps\": " << catalog.steps << ",\n";
  os << "  \"wall_seconds\": " << fmtDouble(catalog.wallSeconds) << ",\n";
  os << "  \"events_detected\": " << catalog.rows.size() << ",\n";
  os << "  \"catalog_digest\": \"" << escapeJson(catalog.digestHex())
     << "\",\n";
  os << "  \"events\": [";
  bool first = true;
  for (const CycleCatalogRow& row : catalog.rows) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"index\": " << row.index
       << ", \"onset_seconds\": " << fmtDouble(row.onsetSeconds)
       << ", \"duration_seconds\": " << fmtDouble(row.durationSeconds)
       << ",\n     \"magnitude\": " << fmtDouble(row.magnitude)
       << ", \"moment_nm\": " << fmtDouble(row.momentNm)
       << ", \"peak_slip_rate\": " << fmtDouble(row.peakSlipRate)
       << ",\n     \"event_digest\": \"" << escapeJson(row.eventDigest)
       << "\", \"spec_hash\": \"" << escapeJson(row.specHash)
       << "\",\n     \"product_digest\": \"" << escapeJson(row.productDigest)
       << "\", \"phase\": \"" << escapeJson(row.phase)
       << "\", \"completions\": " << row.completions << "}";
  }
  os << (catalog.rows.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

std::vector<std::string> validateCycleCatalogJson(const std::string& text) {
  std::vector<std::string> violations;
  telemetry::JsonValue root;
  try {
    root = telemetry::parseJson(text);
  } catch (const Error& e) {
    violations.push_back(std::string("parse error: ") + e.what());
    return violations;
  }
  if (!root.isObject()) {
    violations.push_back("root is not an object");
    return violations;
  }

  const auto* schema = root.find("schema");
  if (schema == nullptr || !schema->isString() ||
      schema->text != "awp-cycle-catalog")
    violations.push_back("schema is not \"awp-cycle-catalog\"");
  const auto* version = root.find("version");
  if (version == nullptr || !version->isNumber() || version->number != 1.0)
    violations.push_back("version is not 1");

  const auto requireNumber = [&](const char* key,
                                 double minimum) -> const telemetry::JsonValue* {
    const auto* v = root.find(key);
    if (v == nullptr || !v->isNumber() || !std::isfinite(v->number) ||
        v->number < minimum) {
      violations.push_back(std::string(key) +
                           " missing, non-finite, or out of range");
      return nullptr;
    }
    return v;
  };
  requireNumber("nx", 1.0);
  requireNumber("nz", 1.0);
  requireNumber("cell", 0.0);
  requireNumber("years", 0.0);
  requireNumber("seed", 0.0);
  requireNumber("steps", 0.0);
  requireNumber("wall_seconds", 0.0);
  const auto* detected = requireNumber("events_detected", 0.0);

  const auto* digest = root.find("catalog_digest");
  if (digest == nullptr || !digest->isString() || !isHex32(digest->text))
    violations.push_back("catalog_digest is not a 32-char hex digest");

  const auto* events = root.find("events");
  if (events == nullptr || !events->isArray()) {
    violations.push_back("events array missing");
    return violations;
  }
  if (detected != nullptr &&
      static_cast<double>(events->items.size()) != detected->number)
    violations.push_back("events_detected disagrees with the events array");

  double lastOnset = -1.0;
  for (std::size_t n = 0; n < events->items.size(); ++n) {
    const auto& ev = events->items[n];
    const std::string where = "events[" + std::to_string(n) + "]";
    if (!ev.isObject()) {
      violations.push_back(where + " is not an object");
      continue;
    }
    const auto* index = ev.find("index");
    if (index == nullptr || !index->isNumber() ||
        index->number != static_cast<double>(n))
      violations.push_back(where + ".index is not its position");
    const auto evNumber = [&](const char* key) -> double {
      const auto* v = ev.find(key);
      if (v == nullptr || !v->isNumber() || !std::isfinite(v->number)) {
        violations.push_back(where + "." + key + " missing or non-finite");
        return 0.0;
      }
      return v->number;
    };
    const double onset = evNumber("onset_seconds");
    if (onset < 0.0) violations.push_back(where + ".onset_seconds negative");
    if (onset < lastOnset)
      violations.push_back(where + ".onset_seconds out of order");
    lastOnset = onset;
    if (evNumber("duration_seconds") < 0.0)
      violations.push_back(where + ".duration_seconds negative");
    evNumber("magnitude");
    if (evNumber("moment_nm") < 0.0)
      violations.push_back(where + ".moment_nm negative");
    if (evNumber("peak_slip_rate") <= 0.0)
      violations.push_back(where + ".peak_slip_rate not positive");
    const auto evString = [&](const char* key) -> std::string {
      const auto* v = ev.find(key);
      if (v == nullptr || !v->isString()) {
        violations.push_back(where + "." + key + " missing");
        return {};
      }
      return v->text;
    };
    if (!isHex32(evString("event_digest")))
      violations.push_back(where + ".event_digest is not a hex digest");
    if (!isHex32(evString("spec_hash")))
      violations.push_back(where + ".spec_hash is not a hex digest");
    const std::string phase = evString("phase");
    if (phase != "completed" && phase != "failed" && phase != "rejected")
      violations.push_back(where + ".phase is not a terminal phase name");
    const auto* completions = ev.find("completions");
    const double comp = (completions != nullptr && completions->isNumber())
                            ? completions->number
                            : -1.0;
    if (comp < 0.0)
      violations.push_back(where + ".completions missing or negative");
    if (phase == "completed") {
      if (!isHex32(evString("product_digest")))
        violations.push_back(where +
                             ".product_digest missing on a completed event");
      if (comp < 1.0)
        violations.push_back(where + ".completions < 1 on a completed event");
    }
  }
  return violations;
}

}  // namespace awp::cycle
