#include "rupture/stress_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/fft.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace awp::rupture {

std::vector<double> vonKarmanField(std::size_t nx, std::size_t nz, double dx,
                                   double corrX, double corrZ, double hurst,
                                   std::uint64_t seed) {
  const std::size_t fx = nextPow2(std::max<std::size_t>(nx, 8));
  const std::size_t fz = nextPow2(std::max<std::size_t>(nz, 8));
  std::vector<Complex> spec(fx * fz, Complex(0.0, 0.0));
  Rng rng(seed);

  // Fill the spectrum with von Kármán-filtered white noise. Hermitian
  // symmetry is not enforced; we take the real part after the inverse
  // transform, which halves the variance but keeps the correlation shape.
  for (std::size_t kz = 0; kz < fz; ++kz) {
    for (std::size_t kx = 0; kx < fx; ++kx) {
      const double wx =
          (kx <= fx / 2 ? static_cast<double>(kx)
                        : static_cast<double>(kx) - static_cast<double>(fx)) *
          2.0 * M_PI / (static_cast<double>(fx) * dx);
      const double wz =
          (kz <= fz / 2 ? static_cast<double>(kz)
                        : static_cast<double>(kz) - static_cast<double>(fz)) *
          2.0 * M_PI / (static_cast<double>(fz) * dx);
      const double arg = 1.0 + wx * wx * corrX * corrX +
                         wz * wz * corrZ * corrZ;
      const double amp = std::pow(arg, -(hurst + 1.0) / 2.0);
      spec[kx + fx * kz] =
          Complex(rng.gaussian() * amp, rng.gaussian() * amp);
    }
  }
  spec[0] = Complex(0.0, 0.0);  // zero mean
  fft2d(spec, fx, fz, /*inverse=*/true);

  std::vector<double> field(nx * nz);
  for (std::size_t k = 0; k < nz; ++k)
    for (std::size_t i = 0; i < nx; ++i)
      field[i + nx * k] = spec[i + fx * k].real();

  // Normalize to zero mean, unit variance.
  const double m = mean(field);
  double var = 0.0;
  for (double v : field) var += (v - m) * (v - m);
  var /= static_cast<double>(field.size());
  const double s = var > 0.0 ? 1.0 / std::sqrt(var) : 1.0;
  for (double& v : field) v = (v - m) * s;
  return field;
}

FaultInitialStress buildInitialStress(std::size_t nx, std::size_t nz,
                                      double h,
                                      const StressModelConfig& config,
                                      const SlipWeakeningFriction& friction) {
  AWP_CHECK(nx > 0 && nz > 0 && h > 0.0);
  FaultInitialStress out;
  out.nx = nx;
  out.nz = nz;
  out.h = h;
  out.tau0.resize(nx * nz);
  out.sigmaN.resize(nx * nz);

  const auto noise = vonKarmanField(nx, nz, h, config.corrX, config.corrZ,
                                    config.hurst, config.seed);
  // Map the unit field into [0, 1] through a smooth squash.
  auto squash = [](double v) { return 0.5 * (1.0 + std::tanh(v)); };

  for (std::size_t k = 0; k < nz; ++k) {
    const double depth = static_cast<double>(nz - 1 - k) * h;
    for (std::size_t i = 0; i < nx; ++i) {
      const double sigmaN =
          std::max(config.normalAtSurface + config.normalGradient * depth,
                   config.normalSaturation);
      // Static and (asymptotic) dynamic strength at this depth.
      const double tauS = friction.strength(0.0, depth, sigmaN);
      const double tauD =
          friction.strength(1.0e9 /* fully weakened */, depth, sigmaN);
      // Accommodate the random field between the reloading level and the
      // configured maximum fraction of the strength excess. In the
      // velocity-strengthened zone τd > τs (negative stress drop); there
      // the initial stress is still capped below the failure stress so
      // nothing slips spontaneously.
      const double lo =
          std::min(tauD + config.reloadFraction * (tauS - tauD),
                   0.9 * tauS);
      const double hi =
          std::min(tauD + config.maxFraction * (tauS - tauD),
                   0.99 * tauS);
      const double f = squash(noise[i + nx * k]);
      double tau = std::min(lo + f * std::max(0.0, hi - lo), 0.99 * tauS);
      // Linear taper of the shear stress to zero at the surface (§VII.A).
      if (depth < config.shearTaperDepth)
        tau *= depth / config.shearTaperDepth;
      // Nucleation: push the patch slightly above the static strength.
      if (config.nucRadius > 0.0) {
        const double x = static_cast<double>(i) * h;
        const double ddx = x - config.nucX;
        const double ddz = depth - config.nucZ;
        if (ddx * ddx + ddz * ddz <= config.nucRadius * config.nucRadius)
          tau = tauS * (1.0 + config.nucExcess);
      }
      out.tau0[i + nx * k] = tau;
      out.sigmaN[i + nx * k] = sigmaN;
    }
  }
  return out;
}

FaultInitialStress accommodateStressPattern(
    const std::vector<double>& pattern, const std::vector<char>& nucMask,
    std::size_t nx, std::size_t nz, double h, const StressModelConfig& config,
    const SlipWeakeningFriction& friction) {
  AWP_CHECK(nx > 0 && nz > 0 && h > 0.0);
  AWP_CHECK(pattern.size() == nx * nz && nucMask.size() == nx * nz);
  FaultInitialStress out;
  out.nx = nx;
  out.nz = nz;
  out.h = h;
  out.tau0.resize(nx * nz);
  out.sigmaN.resize(nx * nz);

  for (std::size_t k = 0; k < nz; ++k) {
    const double depth = static_cast<double>(nz - 1 - k) * h;
    for (std::size_t i = 0; i < nx; ++i) {
      const double sigmaN =
          std::max(config.normalAtSurface + config.normalGradient * depth,
                   config.normalSaturation);
      const double tauS = friction.strength(0.0, depth, sigmaN);
      const double tauD =
          friction.strength(1.0e9 /* fully weakened */, depth, sigmaN);
      const double lo =
          std::min(tauD + config.reloadFraction * (tauS - tauD),
                   0.9 * tauS);
      const double hi =
          std::min(tauD + config.maxFraction * (tauS - tauD),
                   0.99 * tauS);
      const double f =
          std::clamp(pattern[i + nx * k], 0.0, 1.0);
      double tau = std::min(lo + f * std::max(0.0, hi - lo), 0.99 * tauS);
      if (depth < config.shearTaperDepth)
        tau *= depth / config.shearTaperDepth;
      if (nucMask[i + nx * k] != 0)
        tau = tauS * (1.0 + config.nucExcess);
      out.tau0[i + nx * k] = tau;
      out.sigmaN[i + nx * k] = sigmaN;
    }
  }
  return out;
}

}  // namespace awp::rupture
