#include "rupture/solver.hpp"

#include <cmath>
#include <cstring>
#include <string>

#include "core/source.hpp"
#include "health/preflight.hpp"
#include "telemetry/registry.hpp"
#include "util/error.hpp"

namespace awp::rupture {

using grid::kHalo;

double FaultHistory::seismicMoment() const {
  double m0 = 0.0;
  for (std::size_t n = 0; n < finalSlip.size(); ++n)
    m0 += static_cast<double>(rigidity[n]) * finalSlip[n] * h * h;
  return m0;
}

double FaultHistory::momentMagnitude() const {
  return core::momentMagnitude(seismicMoment());
}

double FaultHistory::averageSlip() const {
  double s = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < finalSlip.size(); ++i)
    if (ruptureTime[i] >= 0.0f) {
      s += finalSlip[i];
      ++n;
    }
  return n > 0 ? s / static_cast<double>(n) : 0.0;
}

double FaultHistory::superShearFraction(double vs) const {
  std::size_t super = 0, total = 0;
  for (std::size_t k = 0; k < nz; ++k)
    for (std::size_t i = 1; i + 1 < nx; ++i) {
      const float t0 = ruptureTime[i - 1 + nx * k];
      const float t1 = ruptureTime[i + 1 + nx * k];
      if (t0 < 0.0f || t1 < 0.0f) continue;
      const double dtDx = std::abs(t1 - t0) / (2.0 * h);
      if (dtDx <= 0.0) continue;
      const double vr = 1.0 / dtDx;
      ++total;
      if (vr > vs) ++super;
    }
  return total > 0 ? static_cast<double>(super) / total : 0.0;
}

DynamicRuptureSolver::DynamicRuptureSolver(vcluster::Communicator& comm,
                                           const vcluster::CartTopology& topo,
                                           const RuptureConfig& config,
                                           const vmodel::VelocityModel& model)
    : comm_(comm),
      topo_(topo),
      config_(config),
      friction_(config.friction) {
  AWP_CHECK(comm.size() == topo.size());
  AWP_CHECK(config_.fi1 > config_.fi0 && config_.fk1 > config_.fk0);
  AWP_CHECK(config_.fi1 <= config_.globalDims.nx &&
            config_.fk1 <= config_.globalDims.nz);
  AWP_CHECK_MSG(config_.faultJ + 2 < config_.globalDims.ny,
                "fault plane too close to the +y boundary");

  geom_.global = config_.globalDims;
  const mesh::MeshSpec spec{config_.globalDims.nx, config_.globalDims.ny,
                            config_.globalDims.nz, config_.h, 0.0, 0.0};
  geom_.local = mesh::subdomainFor(topo_, spec, comm_.rank());

  // Sample the velocity model into this rank's block (the rupture model
  // uses a 1D average structure along the SAF, §VII.A).
  mesh::MeshBlock block;
  block.spec = geom_.local;
  block.points.resize(block.spec.pointCount());
  for (std::size_t k = 0; k < block.spec.z.count(); ++k) {
    // Mesh block k is a depth slice index (0 = surface).
    const double depth = static_cast<double>(k) * config_.h;
    for (std::size_t j = 0; j < block.spec.y.count(); ++j)
      for (std::size_t i = 0; i < block.spec.x.count(); ++i) {
        const double x =
            static_cast<double>(block.spec.x.begin + i) * config_.h;
        const double y =
            static_cast<double>(block.spec.y.begin + j) * config_.h;
        block.at(i, j, k) = model.sample(x, y, depth);
      }
  }

  const grid::GridDims local{block.spec.x.count(), block.spec.y.count(),
                             block.spec.z.count()};
  double dt = config_.dt;
  if (dt <= 0.0) {
    grid::StaggeredGrid probe(local, config_.h, 1.0);
    probe.setMaterial(block);
    dt = comm_.allreduce(probe.stableDt(), vcluster::ReduceOp::Min);
    config_.dt = dt;
  }
  grid_ = std::make_unique<grid::StaggeredGrid>(local, config_.h, dt);
  grid_->setMaterial(block);

  halo_ = std::make_unique<grid::HaloExchanger>(
      comm_, topo_, grid::HaloExchanger::Mode::Asynchronous,
      /*reduced=*/true);
  halo_->exchangeMaterial(*grid_);
  freeSurface_ = std::make_unique<core::FreeSurface>(geom_);
  sponge_ = std::make_unique<core::SpongeLayer>(geom_, *grid_,
                                                config_.spongeWidth);

  // Initial stress over the full fault extent (global), then bind the
  // locally owned nodes. The stress model grid covers [fi0, fi1) x
  // [fk0, fk1).
  if (config_.stressOverride) {
    const auto& ov = *config_.stressOverride;
    if (ov.nx != config_.fi1 - config_.fi0 ||
        ov.nz != config_.fk1 - config_.fk0)
      throw Error("rupture: stress override is " + std::to_string(ov.nx) +
                  "x" + std::to_string(ov.nz) + ", fault extent wants " +
                  std::to_string(config_.fi1 - config_.fi0) + "x" +
                  std::to_string(config_.fk1 - config_.fk0));
    stress_ = ov;
  } else {
    stress_ = buildInitialStress(config_.fi1 - config_.fi0,
                                 config_.fk1 - config_.fk0, config_.h,
                                 config_.stress, friction_);
  }

  for (std::size_t gk = config_.fk0; gk < config_.fk1; ++gk)
    for (std::size_t gi = config_.fi0; gi < config_.fi1; ++gi) {
      std::size_t li, lj, lk;
      if (!geom_.owns(gi, config_.faultJ, gk, li, lj, lk)) continue;
      LocalNode n;
      n.gi = gi;
      n.gk = gk;
      n.li = li;
      n.lj = lj;
      n.lk = lk;
      n.tau0 = static_cast<float>(
          stress_.tauAt(gi - config_.fi0, gk - config_.fk0));
      n.sigmaN = static_cast<float>(
          stress_.sigmaAt(gi - config_.fi0, gk - config_.fk0));
      n.depth = static_cast<float>(
          static_cast<double>(config_.globalDims.nz - 1 - gk) * config_.h);
      n.mu = grid_->mu(li, lj, lk);
      nodes_.push_back(n);
    }

  if (config_.preflight) {
    health::RupturePreflightContext pf;
    pf.muS = config_.friction.muS;
    pf.muD = config_.friction.muD;
    pf.dc = config_.friction.dc;
    pf.dcSurface = config_.friction.dcSurface;
    pf.cohesion = config_.friction.cohesion;
    pf.maxSupercriticalFraction = config_.maxSupercriticalFraction;
    pf.nodes.reserve(nodes_.size());
    for (const LocalNode& n : nodes_)
      pf.nodes.push_back({n.gi, n.gk, n.tau0, n.sigmaN, n.depth});
    health::collectiveRupturePreflight(comm_, pf);  // throws when Fatal
  }
}

void DynamicRuptureSolver::recordSlipRates() {
  const bool record =
      step_ % static_cast<std::size_t>(config_.timeDecimation) == 0;
  if (record) ++recordedSteps_;
  const float dt = static_cast<float>(grid_->dt());
  const float t = static_cast<float>(step_) * dt;

  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    LocalNode& node = nodes_[n];
    // Velocity discontinuity across the plane: the split-node slip rate.
    const float rateX = grid_->u(node.li, node.lj + 1, node.lk) -
                        grid_->u(node.li, node.lj, node.lk);
    const float rateZ = grid_->w(node.li, node.lj + 1, node.lk) -
                        grid_->w(node.li, node.lj, node.lk);
    const float rate = std::sqrt(rateX * rateX + rateZ * rateZ);
    node.slipPath += rate * dt;
    node.slipX += rateX * dt;
    node.slipZ += rateZ * dt;
    node.peakRate = std::max(node.peakRate, rate);
    if (node.ruptureTime < 0.0f &&
        rate > static_cast<float>(config_.slipRateThreshold))
      node.ruptureTime = t;
    if (record) {
      historyX_.push_back(rateX);
      historyZ_.push_back(rateZ);
    }
  }
}

void DynamicRuptureSolver::faultCondition() {
  for (LocalNode& node : nodes_) {
    const float txTotal = node.tau0 + grid_->xy(node.li, node.lj, node.lk);
    const float tzTotal = grid_->yz(node.li, node.lj, node.lk);
    const float mag = std::sqrt(txTotal * txTotal + tzTotal * tzTotal);
    const float strength = static_cast<float>(
        friction_.strength(node.slipPath, node.depth, node.sigmaN));
    if (mag > strength && mag > 0.0f) {
      const float scale = strength / mag;
      grid_->xy(node.li, node.lj, node.lk) = txTotal * scale - node.tau0;
      grid_->yz(node.li, node.lj, node.lk) = tzTotal * scale;
    }
  }
}

void DynamicRuptureSolver::step() {
  telemetry::stepMark(step_);
  telemetry::count(telemetry::Counter::CellsUpdated, grid_->dims().count());
  const core::Region r = core::Region::interior(*grid_);
  {
    telemetry::ScopedSpan span(telemetry::Phase::VelocityKernel);
    core::updateVelocity(*grid_, config_.kernels);
    halo_->exchangeVelocities(*grid_);
    freeSurface_->applyVelocityImages(*grid_);
  }
  {
    telemetry::ScopedSpan span(telemetry::Phase::Rupture);
    recordSlipRates();
  }
  {
    telemetry::ScopedSpan span(telemetry::Phase::StressKernel);
    core::updateStress(*grid_, core::StressGroup::Normal, config_.kernels, r);
    core::updateStress(*grid_, core::StressGroup::XY, config_.kernels, r);
    core::updateStress(*grid_, core::StressGroup::XZ, config_.kernels, r);
    core::updateStress(*grid_, core::StressGroup::YZ, config_.kernels, r);
  }
  {
    telemetry::ScopedSpan span(telemetry::Phase::Rupture);
    faultCondition();
  }
  {
    telemetry::ScopedSpan span(telemetry::Phase::StressKernel);
    freeSurface_->applyStressImages(*grid_);
    halo_->exchangeStresses(*grid_);
  }
  {
    telemetry::ScopedSpan span(telemetry::Phase::Absorb);
    sponge_->apply(*grid_);
  }
  ++step_;
}

void DynamicRuptureSolver::run(std::size_t nSteps) {
  for (std::size_t n = 0; n < nSteps; ++n) step();
}

FaultHistory DynamicRuptureSolver::gather() {
  // Serialize local nodes: gi, gk, finalSlip, peak, rtime, mu, histories.
  const std::size_t histLen = recordedSteps_;
  std::vector<std::byte> payload;
  auto put = [&](const void* p, std::size_t bytes) {
    const auto* b = static_cast<const std::byte*>(p);
    payload.insert(payload.end(), b, b + bytes);
  };
  const std::uint64_t count = nodes_.size();
  const std::uint64_t hl = histLen;
  put(&count, sizeof(count));
  put(&hl, sizeof(hl));
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const LocalNode& node = nodes_[n];
    const std::uint64_t gi = node.gi, gk = node.gk;
    put(&gi, sizeof(gi));
    put(&gk, sizeof(gk));
    const float vals[5] = {node.slipPath, node.peakRate, node.ruptureTime,
                           node.mu, node.slipX};
    put(vals, sizeof(vals));
    // Histories are stored time-major across nodes (appended per step);
    // extract this node's series.
    std::vector<float> hx(histLen), hz(histLen);
    for (std::size_t t = 0; t < histLen; ++t) {
      hx[t] = historyX_[t * nodes_.size() + n];
      hz[t] = historyZ_[t * nodes_.size() + n];
    }
    put(hx.data(), hx.size() * sizeof(float));
    put(hz.data(), hz.size() * sizeof(float));
  }

  const auto gathered = comm_.gatherBytes(0, payload);
  FaultHistory out;
  if (comm_.rank() != 0) return out;

  out.nx = config_.fi1 - config_.fi0;
  out.nz = config_.fk1 - config_.fk0;
  out.h = config_.h;
  out.dt = grid_->dt();
  out.timeDecimation = config_.timeDecimation;
  const std::size_t nNodes = out.nx * out.nz;
  out.finalSlip.assign(nNodes, 0.0f);
  out.peakSlipRate.assign(nNodes, 0.0f);
  out.ruptureTime.assign(nNodes, -1.0f);
  out.rigidity.assign(nNodes, 0.0f);

  // First pass to learn the history length (identical on all ranks).
  std::size_t histLenGlobal = 0;
  for (const auto& blob : gathered) {
    if (blob.size() < 16) continue;
    std::uint64_t hlv;
    std::memcpy(&hlv, blob.data() + 8, sizeof(hlv));
    histLenGlobal = std::max<std::size_t>(histLenGlobal, hlv);
  }
  out.recordedSteps = histLenGlobal;
  out.slipRateX.assign(nNodes * histLenGlobal, 0.0f);
  out.slipRateZ.assign(nNodes * histLenGlobal, 0.0f);

  for (const auto& blob : gathered) {
    if (blob.empty()) continue;
    std::size_t at = 0;
    auto get = [&](void* p, std::size_t bytes) {
      AWP_CHECK(at + bytes <= blob.size());
      std::memcpy(p, blob.data() + at, bytes);
      at += bytes;
    };
    std::uint64_t cnt, hlv;
    get(&cnt, sizeof(cnt));
    get(&hlv, sizeof(hlv));
    for (std::uint64_t n = 0; n < cnt; ++n) {
      std::uint64_t gi, gk;
      get(&gi, sizeof(gi));
      get(&gk, sizeof(gk));
      float vals[5];
      get(vals, sizeof(vals));
      const std::size_t idx =
          (gi - config_.fi0) + out.nx * (gk - config_.fk0);
      out.finalSlip[idx] = vals[0];
      out.peakSlipRate[idx] = vals[1];
      out.ruptureTime[idx] = vals[2];
      out.rigidity[idx] = vals[3];
      std::vector<float> hx(hlv), hz(hlv);
      get(hx.data(), hx.size() * sizeof(float));
      get(hz.data(), hz.size() * sizeof(float));
      for (std::size_t t = 0; t < hlv; ++t) {
        out.slipRateX[idx * histLenGlobal + t] = hx[t];
        out.slipRateZ[idx * histLenGlobal + t] = hz[t];
      }
    }
  }
  return out;
}

}  // namespace awp::rupture
