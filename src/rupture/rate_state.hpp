#pragma once
// Rate-and-state friction (Dieterich–Ruina) with the aging law — the
// constitutive model of the earthquake-cycle engine (src/cycle), living
// alongside the slip-weakening model the dynamic rupture solver uses:
//
//   μ(V, θ) = f0 + a·ln(V/V0) + b·ln(V0·θ/L)
//   dθ/dt   = 1 − V·θ/L                       (aging law)
//
// Two analytic limits anchor the unit tests: at constant slip rate V the
// state variable relaxes exponentially onto its steady state L/V,
//   θ(t) = L/V + (θ0 − L/V)·e^(−V·t/L),
// and the steady-state friction μss(V) = f0 + (a−b)·ln(V/V0) — so a−b < 0
// (velocity weakening) admits stick-slip below the critical spring
// stiffness kc = (b−a)·(−σn)/L while a−b > 0 creeps stably (Ruina 1983,
// Rice & Ruina 1983; the quasi-dynamic sequence formulation follows
// Rice 1993 and Ozawa et al., arXiv:2110.12165).

namespace awp::rupture {

struct RateStateParams {
  double a = 0.010;    // direct-effect amplitude
  double b = 0.015;    // state-evolution amplitude (b > a: weakening)
  double L = 0.02;     // state evolution distance [m]
  double f0 = 0.6;     // reference friction coefficient at V0
  double V0 = 1.0e-6;  // reference slip rate [m/s]
};

class RateStateFriction {
 public:
  explicit RateStateFriction(const RateStateParams& p) : p_(p) {}

  // Aging law dθ/dt at slip rate V and state θ.
  [[nodiscard]] double thetaRate(double V, double theta) const;
  // Steady state of the aging law: θss = L/V.
  [[nodiscard]] double steadyStateTheta(double V) const;
  // μss(V) = f0 + (a − b)·ln(V/V0).
  [[nodiscard]] double steadyStateFriction(double V) const;
  // μ(V, θ) = f0 + a·ln(V/V0) + b·ln(V0·θ/L).
  [[nodiscard]] double friction(double V, double theta) const;
  // Frictional shear strength for effective normal stress σn (compression
  // negative, matching the rupture solver's convention): τc = μ·(−σn).
  [[nodiscard]] double strength(double V, double theta, double sigmaN) const;
  // Closed-form θ(t) under constant V from initial state θ0 (the
  // analytic expression the aging-law unit test integrates against).
  [[nodiscard]] double evolveThetaConstV(double theta0, double V,
                                         double t) const;
  // Spring-slider critical stiffness kc = (b − a)·(−σn)/L [Pa/m]: a
  // velocity-weakening patch loaded through stiffness k < kc sticks and
  // slips; k > kc creeps stably at the load-point rate.
  [[nodiscard]] double criticalStiffness(double sigmaN) const;

  [[nodiscard]] const RateStateParams& params() const { return p_; }

 private:
  RateStateParams p_;
};

}  // namespace awp::rupture
