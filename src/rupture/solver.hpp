#pragma once
// DFR: the dynamic fault rupture solver — AWP-ODC's "SGSN mode" (Fig 6).
// A vertical planar fault (normal +y) is embedded in the FD volume on the
// plane y = faultJ + 1/2, which in our staggering is exactly the plane
// carrying the σxy (strike-direction) and σyz (dip-direction) shear
// tractions. Each step the elastic trial tractions at the fault nodes are
// bounded by the slip-weakening frictional strength; the clamped stress
// difference drives the velocity discontinuity (slip rate) across the
// plane.
//
// Substitution note (recorded in DESIGN.md): the paper integrates the
// split-node SGSN scheme of Dalguer & Day (2007); we implement the
// traction-bounding (stress-glut) formulation on the same staggered grid —
// the method of the original Olsen FD code lineage. It shares the
// slip-weakening dynamics and the 2nd-order near-fault accuracy, and
// converges to the same rupture behaviour with grid refinement; the
// split-velocity bookkeeping (plus/minus sides) is carried through the
// velocity difference across the plane.
//
// The solver's products are the paper's Fig 19 quantities — final slip,
// peak slip rate, rupture time (hence rupture velocity) — plus the
// slip-rate time histories that dSrcG (src/source) turns into the moment-
// rate source for the wave-propagation run (the two-step M8 method).

#include <memory>
#include <vector>

#include "core/free_surface.hpp"
#include "core/geometry.hpp"
#include "core/kernels.hpp"
#include "core/sponge.hpp"
#include "grid/halo.hpp"
#include "grid/staggered_grid.hpp"
#include "rupture/friction.hpp"
#include "rupture/stress_model.hpp"
#include "vcluster/cart.hpp"
#include "vcluster/comm.hpp"
#include "vmodel/cvm.hpp"

namespace awp::rupture {

struct RuptureConfig {
  grid::GridDims globalDims;
  double h = 100.0;  // M8's rupture model used 100 m (§VII.A)
  double dt = 0.0;   // 0 = CFL

  std::size_t faultJ = 0;  // fault plane at global y = faultJ + 1/2
  // Fault extent on the plane: x (strike) and z (k, increasing upward).
  std::size_t fi0 = 0, fi1 = 0, fk0 = 0, fk1 = 0;

  FrictionParams friction;
  StressModelConfig stress;
  // When set, replaces the model-built initial stress with an externally
  // evolved snapshot (the earthquake-cycle bridge hands in a stress field
  // already accommodated to this fault's strength profile). Dimensions
  // must match the fault extent [fi0, fi1) x [fk0, fk1); the stress
  // model's random-field knobs are ignored on this path.
  std::shared_ptr<const FaultInitialStress> stressOverride;
  core::KernelOptions kernels;
  int spongeWidth = 15;

  double slipRateThreshold = 1.0e-3;  // m/s, rupture-time pick
  int timeDecimation = 1;             // slip-rate history decimation

  // Collective input validation after node binding (health::
  // collectiveRupturePreflight): friction parameters physical, initial
  // shear below static strength outside a bounded nucleation patch.
  bool preflight = true;
  double maxSupercriticalFraction = 0.25;  // of the global fault area
};

struct FaultHistory {
  std::size_t nx = 0, nz = 0;  // fault node counts (strike, depth)
  double h = 0.0, dt = 0.0;
  int timeDecimation = 1;
  std::size_t recordedSteps = 0;

  // Node-major maps [i + nx*k] (k as in the solver: increasing upward).
  std::vector<float> finalSlip;     // |slip| [m]
  std::vector<float> peakSlipRate;  // [m/s]
  std::vector<float> ruptureTime;   // [s]; < 0 if never ruptured
  std::vector<float> rigidity;      // μ at the fault nodes [Pa]

  // Histories [node * recordedSteps + t].
  std::vector<float> slipRateX;
  std::vector<float> slipRateZ;

  [[nodiscard]] double seismicMoment() const;  // Σ μ A s
  [[nodiscard]] double momentMagnitude() const;
  [[nodiscard]] double averageSlip() const;  // over ruptured nodes
  // Fraction of ruptured nodes whose rupture speed (from the rupture-time
  // gradient along strike) exceeds the local shear speed.
  [[nodiscard]] double superShearFraction(double vs) const;
};

class DynamicRuptureSolver {
 public:
  DynamicRuptureSolver(vcluster::Communicator& comm,
                       const vcluster::CartTopology& topo,
                       const RuptureConfig& config,
                       const vmodel::VelocityModel& model);

  void step();
  void run(std::size_t nSteps);

  [[nodiscard]] std::size_t currentStep() const { return step_; }
  [[nodiscard]] grid::StaggeredGrid& grid() { return *grid_; }
  [[nodiscard]] const RuptureConfig& config() const { return config_; }
  [[nodiscard]] const FaultInitialStress& initialStress() const {
    return stress_;
  }

  // Collective: assemble the full fault history on rank 0 (others get an
  // empty FaultHistory with nx == 0).
  [[nodiscard]] FaultHistory gather();

 private:
  struct LocalNode {
    std::size_t gi, gk;      // global fault-plane indices
    std::size_t li, lj, lk;  // local raw indices of the σxy/σyz node
    float tau0;              // initial strike shear [Pa]
    float sigmaN;            // effective normal stress [Pa]
    float depth;             // [m]
    float mu;                // rigidity at the node [Pa]
    // Evolving state.
    float slipPath = 0.0f;
    float slipX = 0.0f, slipZ = 0.0f;
    float peakRate = 0.0f;
    float ruptureTime = -1.0f;
  };

  void faultCondition();
  void recordSlipRates();

  vcluster::Communicator& comm_;
  const vcluster::CartTopology& topo_;
  RuptureConfig config_;
  core::DomainGeometry geom_;
  FaultInitialStress stress_;
  SlipWeakeningFriction friction_;

  std::unique_ptr<grid::StaggeredGrid> grid_;
  std::unique_ptr<grid::HaloExchanger> halo_;
  std::unique_ptr<core::FreeSurface> freeSurface_;
  std::unique_ptr<core::SpongeLayer> sponge_;

  std::vector<LocalNode> nodes_;
  std::vector<float> historyX_, historyZ_;  // [node * recordedSteps + t]
  std::size_t recordedSteps_ = 0;
  std::size_t step_ = 0;
};

}  // namespace awp::rupture
