#pragma once
// Initial stress on the fault (§VII.A): depth-dependent compressive normal
// stress from overburden, plus an initial shear stress built from a random
// field with a von Kármán autocorrelation (lateral/vertical correlation
// lengths of 50 km / 10 km for M8), accommodated into the depth-dependent
// frictional strength profile so the minimum represents post-event
// reloading and the maximum reaches the failure stress. The shear stress
// tapers linearly to zero over the top 2 km; rupture is nucleated by a
// small stress increment in a circular patch.

#include <cstdint>
#include <vector>

#include "rupture/friction.hpp"

namespace awp::rupture {

// 2D random field with a von Kármán autocorrelation, synthesized
// spectrally: P(k) ∝ (1 + (kx ax)^2 + (kz az)^2)^-(H+1), normalized to
// zero mean and unit variance. nx/nz need not be powers of two (the FFT
// grid is padded internally).
std::vector<double> vonKarmanField(std::size_t nx, std::size_t nz, double dx,
                                   double corrX, double corrZ, double hurst,
                                   std::uint64_t seed);

struct StressModelConfig {
  double normalGradient = -16000.0;  // dσn/dz [Pa/m] (overburden, effective)
  double normalAtSurface = -1.0e6;   // σn at z = 0 [Pa]
  // Effective normal stress saturates at depth (pore-pressure effects);
  // without the cap the deep stress drops produce unphysical slip.
  double normalSaturation = -60.0e6;
  double shearTaperDepth = 2000.0;   // linear taper of τ0 to 0 at surface
  // von Kármán heterogeneity of the initial shear stress.
  double corrX = 50000.0;  // m (M8: 50 km)
  double corrZ = 10000.0;  // m (M8: 10 km)
  double hurst = 0.75;
  std::uint64_t seed = 20100545;
  // Where within [dynamic, static] strength the random field lives: the
  // initial stress is mapped into [τd + reloadFraction·(τs - τd),
  // τd + maxFraction·(τs - τd)]. The strength-excess ratio
  // S = (τs - τ0)/(τ0 - τd) controls the rupture style: S > ~1.2 stays
  // sub-Rayleigh, smaller S transitions to super-shear (Burridge-Andrews)
  // — these defaults put most of the fault at S ~ 1-2 with the highest
  // random-field peaks crossing into super-shear territory, giving the
  // paper's sub-Rayleigh-with-super-shear-patches character.
  double reloadFraction = 0.33;
  double maxFraction = 0.55;
  // Nucleation patch: a stress increment raising τ0 just above the static
  // strength inside a circular region.
  double nucX = 0.0, nucZ = 0.0;  // center [m] (x along strike, z depth)
  double nucRadius = 0.0;         // m (0 disables)
  double nucExcess = 0.05;        // fraction above static strength
};

struct FaultInitialStress {
  std::size_t nx = 0, nz = 0;  // fault-plane nodes (strike x depth)
  double h = 0.0;
  std::vector<double> tau0;    // initial shear (strike direction) [Pa]
  std::vector<double> sigmaN;  // effective normal stress (negative) [Pa]

  [[nodiscard]] double tauAt(std::size_t i, std::size_t k) const {
    return tau0[i + nx * k];
  }
  [[nodiscard]] double sigmaAt(std::size_t i, std::size_t k) const {
    return sigmaN[i + nx * k];
  }
};

// Build the initial stress for a fault of nx-by-nz nodes with spacing h.
// Depth of node row k is (nz - 1 - k) * h (k increases upward, matching
// the solver's axis convention).
FaultInitialStress buildInitialStress(std::size_t nx, std::size_t nz,
                                      double h,
                                      const StressModelConfig& config,
                                      const SlipWeakeningFriction& friction);

// Accommodate an externally evolved shear-load pattern into the slip-
// weakening strength band — the same [reloadFraction, maxFraction] mapping
// buildInitialStress applies to its squashed random field, but driven by a
// given pattern (values clamped to [0, 1], node-major [i + nx*k]) instead
// of a fresh von Kármán draw. The nucleation mask (same layout, nonzero =
// inside the patch) replaces the circular-patch geometry: masked nodes are
// pushed nucExcess above the static strength. The cycle bridge
// (src/cycle/bridge.cpp) uses this to turn an interseismically evolved
// stress snapshot into a rupture initial condition that respects the
// supercritical-fraction preflight.
FaultInitialStress accommodateStressPattern(
    const std::vector<double>& pattern, const std::vector<char>& nucMask,
    std::size_t nx, std::size_t nz, double h, const StressModelConfig& config,
    const SlipWeakeningFriction& friction);

}  // namespace awp::rupture
