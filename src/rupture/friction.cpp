#include "rupture/friction.hpp"

#include <algorithm>
#include <cmath>

namespace awp::rupture {

double SlipWeakeningFriction::muDAt(double depth) const {
  if (depth <= p_.strengthenTop) return p_.muDStrengthened;
  if (depth >= p_.strengthenBottom) return p_.muD;
  const double f = (depth - p_.strengthenTop) /
                   (p_.strengthenBottom - p_.strengthenTop);
  return p_.muDStrengthened + f * (p_.muD - p_.muDStrengthened);
}

double SlipWeakeningFriction::dcAt(double depth) const {
  if (depth >= p_.dcTaperDepth) return p_.dc;
  // Cosine taper from dcSurface at z = 0 to dc at dcTaperDepth.
  const double f = 0.5 * (1.0 - std::cos(M_PI * depth / p_.dcTaperDepth));
  return p_.dcSurface + f * (p_.dc - p_.dcSurface);
}

double SlipWeakeningFriction::coefficient(double slip, double depth) const {
  const double muD = muDAt(depth);
  const double dc = dcAt(depth);
  const double f = std::min(1.0, slip / dc);
  return p_.muS - (p_.muS - muD) * f;
}

double SlipWeakeningFriction::strength(double slip, double depth,
                                       double sigmaN) const {
  const double normal = std::max(0.0, -sigmaN);  // compression is negative
  return std::max(0.0, p_.cohesion + coefficient(slip, depth) * normal);
}

}  // namespace awp::rupture
