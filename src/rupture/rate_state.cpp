#include "rupture/rate_state.hpp"

#include <cmath>

#include "util/error.hpp"

namespace awp::rupture {

double RateStateFriction::thetaRate(double V, double theta) const {
  return 1.0 - V * theta / p_.L;
}

double RateStateFriction::steadyStateTheta(double V) const {
  AWP_CHECK(V > 0.0);
  return p_.L / V;
}

double RateStateFriction::steadyStateFriction(double V) const {
  AWP_CHECK(V > 0.0);
  return p_.f0 + (p_.a - p_.b) * std::log(V / p_.V0);
}

double RateStateFriction::friction(double V, double theta) const {
  AWP_CHECK(V > 0.0 && theta > 0.0);
  return p_.f0 + p_.a * std::log(V / p_.V0) +
         p_.b * std::log(p_.V0 * theta / p_.L);
}

double RateStateFriction::strength(double V, double theta,
                                   double sigmaN) const {
  return friction(V, theta) * (-sigmaN);
}

double RateStateFriction::evolveThetaConstV(double theta0, double V,
                                            double t) const {
  AWP_CHECK(V > 0.0);
  const double thetaSs = p_.L / V;
  return thetaSs + (theta0 - thetaSs) * std::exp(-V * t / p_.L);
}

double RateStateFriction::criticalStiffness(double sigmaN) const {
  return (p_.b - p_.a) * (-sigmaN) / p_.L;
}

}  // namespace awp::rupture
