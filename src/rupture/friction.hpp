#pragma once
// Slip-weakening friction with the M8 source-model modifications (§VII.A):
//   * static/dynamic coefficients μs = 0.75 / μd = 0.5, dc = 0.3 m;
//   * cohesion of 1 MPa;
//   * emulated velocity strengthening in the top 2 km ("forcing μd > μs,
//     with a linear transition between 2 km and 3 km, causing the stress
//     drop in this region to be negative");
//   * dc increased to 1 m at the free surface with a cosine taper over the
//     top 3 km.

namespace awp::rupture {

struct FrictionParams {
  double muS = 0.75;
  double muD = 0.50;
  double dc = 0.3;          // m
  double cohesion = 1.0e6;  // Pa

  // Velocity-strengthening emulation near the surface.
  double strengthenTop = 2000.0;     // fully strengthened above this depth
  double strengthenBottom = 3000.0;  // unmodified below this depth
  double muDStrengthened = 0.80;     // forced μd (> μs) in the top zone

  // Near-surface dc taper.
  double dcSurface = 1.0;        // m at the free surface
  double dcTaperDepth = 3000.0;  // cosine taper depth
};

class SlipWeakeningFriction {
 public:
  explicit SlipWeakeningFriction(const FrictionParams& p) : p_(p) {}

  // Effective μd at depth z [m] (velocity-strengthening emulation).
  [[nodiscard]] double muDAt(double depth) const;
  // Effective dc at depth z [m] (cosine taper to dcSurface).
  [[nodiscard]] double dcAt(double depth) const;
  // Friction coefficient after slip path length `slip` at depth z.
  [[nodiscard]] double coefficient(double slip, double depth) const;
  // Frictional strength for effective normal stress sigmaN (compression
  // negative, as in the solver): τc = max(0, cohesion + μ·(-σn)).
  [[nodiscard]] double strength(double slip, double depth,
                                double sigmaN) const;

  [[nodiscard]] const FrictionParams& params() const { return p_; }

 private:
  FrictionParams p_;
};

}  // namespace awp::rupture
