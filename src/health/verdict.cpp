#include "health/verdict.hpp"

#include <sstream>

namespace awp::health {

const char* toString(Verdict v) {
  switch (v) {
    case Verdict::Healthy: return "Healthy";
    case Verdict::Degraded: return "Degraded";
    case Verdict::Fatal: return "Fatal";
  }
  return "?";
}

std::string describeIssues(const std::vector<Issue>& issues,
                           std::size_t cap) {
  std::ostringstream os;
  for (std::size_t n = 0; n < issues.size() && n < cap; ++n) {
    if (n > 0) os << "; ";
    os << "[" << toString(issues[n].severity) << "] " << issues[n].what;
  }
  if (issues.size() > cap)
    os << "; ... and " << issues.size() - cap << " more";
  return os.str();
}

}  // namespace awp::health
