#pragma once
// HealthGuard: the per-rank façade that ties the three layers together for
// the solver — preflight before step 0, the in-loop monitor with its
// cluster-wide verdict combine, heartbeat publishing for the watchdog, a
// bounded rollback budget, and the structured event trail / diagnostic
// dump that makes an unattended failure actionable (offending rank, step,
// field, local index, peak-velocity history).
//
// The guard itself never touches the checkpoint store or the grid's dt:
// the solver owns the rollback mechanics (restore + CFL tightening) and
// reports them back via noteRollback(), keeping this layer free of a
// dependency on core.

#include <cstddef>
#include <string>
#include <vector>

#include "health/monitor.hpp"
#include "health/preflight.hpp"
#include "health/verdict.hpp"
#include "health/watchdog.hpp"
#include "vcluster/comm.hpp"

namespace awp::health {

struct HealthConfig {
  bool enabled = false;
  MonitorConfig monitor;
  PreflightLimits limits;
  int maxRollbacks = 3;          // blow-up recoveries before aborting
  double dtTighten = 0.5;        // dt multiplier applied on each rollback
  // Adaptive re-widening: after this many consecutive Healthy scans on a
  // tightened dt, walk dt back toward the CFL-derived value by dtRewiden
  // per event (never past the baseline). 0 disables re-widening.
  int dtRewidenWindow = 0;
  double dtRewiden = 2.0;        // dt multiplier per re-widen event
  double stallTimeoutSeconds = 30.0;  // watchdog knob (harness builds it)
  // Watchdog debounce: consecutive missed scans before a stall episode
  // opens (health_watchdog_miss_threshold).
  int watchdogMissThreshold = 1;
  // In-place rank respawns allowed per attempt before the recovery ladder
  // escalates to cancel-and-requeue (health_respawn_budget). Separate from
  // the scheduler's job-retry budget.
  int respawnBudget = 1;
  HeartbeatBoard* heartbeats = nullptr;  // optional shared board
};

enum class EventKind {
  Preflight,
  Scan,             // a monitor scan with a non-Healthy verdict
  Rollback,         // restored a checkpoint generation, tightened dt
  DtRewiden,        // walked dt back after a streak of Healthy scans
  CheckpointVeto,   // refused to persist a non-finite state
  Abort,            // rollback budget exhausted / nothing to restore
};

const char* toString(EventKind kind);

struct HealthEvent {
  EventKind kind = EventKind::Scan;
  std::size_t step = 0;
  Verdict verdict = Verdict::Healthy;
  int offenderRank = -1;  // cluster-wide offender, -1 if none/local event
  std::string detail;
};

// Cluster-combined outcome of one monitor interval.
struct ClusterVerdict {
  Verdict verdict = Verdict::Healthy;
  int offenderRank = -1;       // worst rank (lowest id on ties)
  std::string offenderDetail;  // offender's finding, known on every rank
  ScanResult local;
};

class HealthGuard {
 public:
  explicit HealthGuard(const HealthConfig& config);

  [[nodiscard]] const HealthConfig& config() const { return config_; }
  [[nodiscard]] FieldMonitor& monitor() { return monitor_; }

  // Collective; throws awp::Error on every rank when any rank is Fatal.
  PreflightReport preflight(vcluster::Communicator& comm,
                            const PreflightContext& ctx);

  [[nodiscard]] bool scanDue(std::size_t step) const {
    return monitor_.due(step);
  }

  // Collective: local scan + allreduce(Max) of the verdicts + broadcast of
  // the offender's diagnostic, so every rank can produce the same dump.
  ClusterVerdict evaluate(vcluster::Communicator& comm,
                          const grid::StaggeredGrid& grid, std::size_t step);

  // Rollback bookkeeping (the solver performs the actual restore).
  [[nodiscard]] int rollbacksUsed() const { return rollbacksUsed_; }
  [[nodiscard]] bool rollbackBudgetLeft() const {
    return rollbacksUsed_ < config_.maxRollbacks;
  }
  void noteRollback(std::size_t fromStep, std::size_t toStep, double newDt);
  void noteCheckpointVeto(std::size_t step);

  // Adaptive dt re-widening. The Healthy streak is fed by evaluate() —
  // verdicts are cluster-combined there, so every rank tracks the same
  // streak and rewidenDue() answers identically cluster-wide. The solver
  // performs the actual dt change and reports it back via noteRewiden()
  // (which restarts the streak, spacing successive re-widen events).
  [[nodiscard]] bool rewidenDue() const {
    return config_.dtRewidenWindow > 0 &&
           consecutiveHealthy_ >= config_.dtRewidenWindow;
  }
  [[nodiscard]] int consecutiveHealthyScans() const {
    return consecutiveHealthy_;
  }
  void noteRewiden(std::size_t step, double newDt);

  // Publish a heartbeat if a board is attached (no-op otherwise).
  void beat(int rank, std::size_t step);

  // Record the abort event and build the structured diagnostic dump.
  [[nodiscard]] std::string abortDump(const ClusterVerdict& cv,
                                      std::size_t step);

  [[nodiscard]] const std::vector<HealthEvent>& events() const {
    return events_;
  }

 private:
  HealthConfig config_;
  FieldMonitor monitor_;
  int rollbacksUsed_ = 0;
  int consecutiveHealthy_ = 0;
  std::vector<HealthEvent> events_;
};

}  // namespace awp::health
