#include "health/watchdog.hpp"

#include "util/error.hpp"

namespace awp::health {

using Clock = std::chrono::steady_clock;

HeartbeatBoard::HeartbeatBoard(int nranks)
    : count_(static_cast<std::size_t>(nranks)),
      slots_(std::make_unique<Slot[]>(count_)) {
  AWP_CHECK(nranks > 0);
}

void HeartbeatBoard::beat(int rank, std::uint64_t step) {
  AWP_CHECK(rank >= 0 && static_cast<std::size_t>(rank) < count_);
  auto& slot = slots_[static_cast<std::size_t>(rank)];
  slot.step.store(step, std::memory_order_relaxed);
  slot.atNs.store(Clock::now().time_since_epoch().count(),
                  std::memory_order_release);
}

HeartbeatBoard::Beat HeartbeatBoard::last(int rank) const {
  AWP_CHECK(rank >= 0 && static_cast<std::size_t>(rank) < count_);
  const auto& slot = slots_[static_cast<std::size_t>(rank)];
  Beat b;
  const std::int64_t ns = slot.atNs.load(std::memory_order_acquire);
  if (ns < 0) return b;
  b.seen = true;
  b.step = slot.step.load(std::memory_order_relaxed);
  b.at = Clock::time_point(Clock::duration(ns));
  return b;
}

Watchdog::Watchdog(const HeartbeatBoard& board, double stallTimeoutSeconds,
                   StallFn onStall, double pollIntervalSeconds,
                   int missThreshold)
    : board_(board),
      timeout_(stallTimeoutSeconds),
      poll_(pollIntervalSeconds),
      missThreshold_(missThreshold),
      onStall_(std::move(onStall)) {
  AWP_CHECK(stallTimeoutSeconds > 0.0 && pollIntervalSeconds > 0.0);
  AWP_CHECK_MSG(missThreshold >= 1, "watchdog miss threshold must be >= 1");
  thread_ = std::thread([this] { scanLoop(); });
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

std::vector<StallReport> Watchdog::reports() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reports_;
}

std::vector<StallReport> Watchdog::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<StallReport> out(reports_.begin() +
                                   static_cast<std::ptrdiff_t>(drained_),
                               reports_.end());
  drained_ = reports_.size();
  return out;
}

Verdict verdictFor(const StallReport& report, double stallTimeoutSeconds,
                   double fatalFactor) {
  AWP_CHECK(stallTimeoutSeconds > 0.0 && fatalFactor >= 1.0);
  if (report.rank < 0) return Verdict::Healthy;  // empty report: no stall
  return report.stalledSeconds >= fatalFactor * stallTimeoutSeconds
             ? Verdict::Fatal
             : Verdict::Degraded;
}

void Watchdog::scanLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::duration<double>(poll_));
    const auto now = Clock::now();

    StallReport report;
    bool originSeen = false;
    for (int r = 0; r < board_.size(); ++r) {
      const auto beat = board_.last(r);
      if (!beat.seen) continue;  // rank not running a monitored loop yet
      const double age =
          std::chrono::duration<double>(now - beat.at).count();
      if (age < timeout_) continue;
      report.stalledRanks.push_back(r);
      // Origin: lowest last-heartbeat step; ties go to the lowest rank.
      if (!originSeen || beat.step < report.lastStep) {
        originSeen = true;
        report.rank = r;
        report.lastStep = beat.step;
        report.stalledSeconds = age;
      }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    if (!originSeen) {
      episodeOpen_ = false;
      missedScans_ = 0;  // debounce resets on any clean scan
      continue;
    }
    // Debounce: require missThreshold_ consecutive stalled scans before an
    // episode may open, so a one-scan heartbeat hiccup (respawn quiesce,
    // slow flush) never trips the escalation ladder.
    if (++missedScans_ < missThreshold_) continue;
    // One report per episode; a new episode needs the previous origin to
    // have beaten again (or a different origin to emerge).
    if (episodeOpen_ && episodeOrigin_ == report.rank &&
        episodeOriginStep_ == report.lastStep)
      continue;
    episodeOpen_ = true;
    episodeOrigin_ = report.rank;
    episodeOriginStep_ = report.lastStep;
    reports_.push_back(report);
    if (onStall_) onStall_(report);
  }
}

}  // namespace awp::health
