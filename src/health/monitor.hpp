#pragma once
// In-loop numerical monitor (layer 2 of the health guard). Every N steps
// each rank scans its wavefields for NaN/Inf and tracks the growth of the
// peak velocity between scans. A single poisoned cell propagates through
// the stencil at ~2 cells/step in every direction, so one scan interval
// bounds how far garbage can travel before it is caught; the growth-rate
// track catches the slower failure mode where an unstable dt amplifies the
// field exponentially *before* it overflows to Inf.
//
// Verdicts: NaN/Inf anywhere ⇒ Fatal. Peak velocity growing faster than
// `growthLimit` per scan window (above an absolute floor) ⇒ Degraded;
// `degradedFatalAfter` consecutive Degraded scans promote to Fatal —
// exponential growth that persists for several windows IS a blow-up even
// while every value is still finite.

#include <cstddef>
#include <deque>
#include <string>

#include "grid/staggered_grid.hpp"
#include "health/verdict.hpp"

namespace awp::health {

struct MonitorConfig {
  int everySteps = 25;           // scan cadence (0 disables scanning)
  double growthLimit = 100.0;    // peak-velocity factor per window
  double velocityFloor = 1e-12;  // ignore growth below this peak [m/s]
  int degradedFatalAfter = 3;    // consecutive Degraded scans ⇒ Fatal
};

// Result of one local scan.
struct ScanResult {
  Verdict verdict = Verdict::Healthy;
  std::string detail;         // human-readable first offence
  // First offending sample, when verdict != Healthy from a field defect.
  std::string field;          // "u", "xy", ...
  std::size_t i = 0, j = 0, k = 0;  // local raw indices
  double value = 0.0;
  double peakVelocity = 0.0;  // max |u|,|v|,|w| this scan
};

class FieldMonitor {
 public:
  explicit FieldMonitor(MonitorConfig config) : config_(config) {}

  [[nodiscard]] const MonitorConfig& config() const { return config_; }
  [[nodiscard]] bool due(std::size_t step) const {
    return config_.everySteps > 0 &&
           step % static_cast<std::size_t>(config_.everySteps) == 0;
  }

  // Scan this rank's fields; records the peak into the history.
  ScanResult scan(const grid::StaggeredGrid& g);

  // Local-only finiteness check (no history side effects) — the checkpoint
  // gate uses this so a non-finite state is never persisted.
  static bool allFinite(const grid::StaggeredGrid& g);

  // Recent peak-velocity samples, oldest first (bounded).
  [[nodiscard]] const std::deque<double>& peakHistory() const {
    return peakHistory_;
  }

  // Forget growth state after a rollback: the restored field is from a
  // different trajectory, so comparing against pre-rollback peaks would
  // immediately re-trip the growth check.
  void resetAfterRollback();

 private:
  MonitorConfig config_;
  std::deque<double> peakHistory_;
  int consecutiveDegraded_ = 0;
};

}  // namespace awp::health
