#pragma once
// The health verdict lattice shared by every layer of the guard:
//   Healthy < Degraded < Fatal
// Local verdicts are ints so they combine across the cluster with a single
// Communicator::allreduce(Max) — the cluster verdict is the worst local
// one, and every rank sees it, so aborts and rollbacks are collective by
// construction (no rank can decide alone and deadlock the others).

#include <cstdint>
#include <string>
#include <vector>

namespace awp::health {

enum class Verdict : int { Healthy = 0, Degraded = 1, Fatal = 2 };

const char* toString(Verdict v);

inline Verdict worse(Verdict a, Verdict b) { return a < b ? b : a; }

inline std::int64_t encode(Verdict v) { return static_cast<std::int64_t>(v); }
inline Verdict decode(std::int64_t v) {
  return v >= 2 ? Verdict::Fatal
                : (v == 1 ? Verdict::Degraded : Verdict::Healthy);
}

// One local diagnostic finding (preflight or in-loop scan).
struct Issue {
  Verdict severity = Verdict::Healthy;
  std::string what;
};

// Render a bounded issue list ("... and N more" past the cap).
std::string describeIssues(const std::vector<Issue>& issues,
                           std::size_t cap = 8);

}  // namespace awp::health
