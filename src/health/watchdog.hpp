#pragma once
// Rank watchdog (layer 3 of the health guard). At capability scale a
// wedged rank does not crash the job — it silently hangs every collective
// and the allocation burns until the queue limit kills it. Here each rank
// publishes a heartbeat (the step it is entering) into a shared
// HeartbeatBoard at the top of every solver step; an out-of-band Watchdog
// thread scans the board and, when heartbeats go stale past a configurable
// timeout, emits a StallReport naming the suspected origin: among the
// stalled ranks, the one with the LOWEST last-heartbeat step. A genuinely
// wedged rank stops beating first, so its neighbors — which advance one
// more step before blocking on it in a halo exchange — sit one beat ahead;
// the minimum-step rank is the one holding everyone back.
//
// The watchdog only observes: it never kills ranks. Tests exercise it
// deterministically with the fault injector's rank-stall site
// ("solver.step"), turning a hang into an actionable report.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "health/verdict.hpp"
#include "util/guarded.hpp"

namespace awp::health {

// Shared per-rank heartbeat slots. beat() is wait-free; readers may see a
// beat's (step, time) pair mid-update, which at worst ages a report by one
// poll interval — acceptable for a monitoring path.
class HeartbeatBoard {
 public:
  explicit HeartbeatBoard(int nranks);

  [[nodiscard]] int size() const { return static_cast<int>(count_); }

  // Publish "rank is entering `step`".
  void beat(int rank, std::uint64_t step);

  struct Beat {
    bool seen = false;       // at least one beat published
    std::uint64_t step = 0;  // last published step
    std::chrono::steady_clock::time_point at{};
  };
  [[nodiscard]] Beat last(int rank) const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> step{0};
    std::atomic<std::int64_t> atNs{-1};  // steady_clock ns; -1 = never
  };
  std::size_t count_;
  std::unique_ptr<Slot[]> slots_;
};

struct StallReport {
  int rank = -1;                  // suspected origin (lowest stalled step)
  std::uint64_t lastStep = 0;     // last heartbeat step of the origin
  double stalledSeconds = 0.0;    // age of the origin's heartbeat
  std::vector<int> stalledRanks;  // every rank past the timeout
};

class Watchdog {
 public:
  using StallFn = std::function<void(const StallReport&)>;

  // Starts the scan thread. One report is emitted per stall episode: after
  // reporting, the watchdog stays quiet until the origin rank beats again.
  // `missThreshold` debounces verdicts: an episode opens only after that
  // many CONSECUTIVE scans saw a stalled origin (1 = report immediately).
  // A respawn quiesce or a slow I/O flush can age heartbeats past the
  // timeout for one scan; debouncing keeps those from tripping the ladder.
  Watchdog(const HeartbeatBoard& board, double stallTimeoutSeconds,
           StallFn onStall = nullptr, double pollIntervalSeconds = 0.05,
           int missThreshold = 1);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void stop();  // idempotent; joins the scan thread

  [[nodiscard]] std::vector<StallReport> reports() const;

  // Consume pending (not yet drained) reports. reports() stays a full
  // non-destructive history; drain() hands each episode to exactly one
  // consumer — the scenario-service scheduler polls it to decide on
  // cancellation and requeue without double-acting on an episode.
  [[nodiscard]] std::vector<StallReport> drain();

 private:
  void scanLoop();

  const HeartbeatBoard& board_;
  double timeout_;
  double poll_;
  int missThreshold_;
  int missedScans_ = 0;  // consecutive scans with a stalled origin
  StallFn onStall_;
  std::atomic<bool> stop_{false};
  mutable std::mutex mutex_;
  std::vector<StallReport> reports_ AWP_GUARDED_BY(mutex_);
  bool episodeOpen_ AWP_GUARDED_BY(mutex_) = false;
  int episodeOrigin_ AWP_GUARDED_BY(mutex_) = -1;
  std::uint64_t episodeOriginStep_ AWP_GUARDED_BY(mutex_) = 0;
  // reports_ prefix already handed out by drain().
  std::size_t drained_ AWP_GUARDED_BY(mutex_) = 0;
  std::thread thread_;
};

// Map a stall episode onto the health verdict lattice so schedulers and
// tests act on stalls with the same vocabulary as field monitoring: a
// fresh episode is Degraded (the rank may still recover — injected stalls
// are transient by construction); one aged past `fatalFactor` timeouts is
// Fatal (treat the rank as lost, cancel and reschedule from checkpoint).
[[nodiscard]] Verdict verdictFor(const StallReport& report,
                                 double stallTimeoutSeconds,
                                 double fatalFactor = 4.0);

}  // namespace awp::health
