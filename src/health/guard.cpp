#include "health/guard.hpp"

#include <sstream>

#include "telemetry/registry.hpp"

namespace awp::health {

const char* toString(EventKind kind) {
  switch (kind) {
    case EventKind::Preflight: return "Preflight";
    case EventKind::Scan: return "Scan";
    case EventKind::Rollback: return "Rollback";
    case EventKind::DtRewiden: return "DtRewiden";
    case EventKind::CheckpointVeto: return "CheckpointVeto";
    case EventKind::Abort: return "Abort";
  }
  return "?";
}

HealthGuard::HealthGuard(const HealthConfig& config)
    : config_(config), monitor_(config.monitor) {}

PreflightReport HealthGuard::preflight(vcluster::Communicator& comm,
                                       const PreflightContext& ctx) {
  telemetry::ScopedSpan span(telemetry::Phase::HealthScan);
  // collectivePreflight throws on every rank when any rank is Fatal; the
  // event below therefore only records surviving (Healthy/Degraded) runs.
  const PreflightReport report = collectivePreflight(comm, ctx);
  events_.push_back({EventKind::Preflight, 0, report.verdict, -1,
                     report.issues.empty() ? "clean"
                                           : describeIssues(report.issues)});
  return report;
}

ClusterVerdict HealthGuard::evaluate(vcluster::Communicator& comm,
                                     const grid::StaggeredGrid& grid,
                                     std::size_t step) {
  telemetry::ScopedSpan span(telemetry::Phase::HealthScan);
  ClusterVerdict cv;
  cv.local = monitor_.scan(grid);
  cv.verdict = decode(comm.allreduce(encode(cv.local.verdict),
                                     vcluster::ReduceOp::Max));
  if (cv.verdict == Verdict::Healthy) {
    ++consecutiveHealthy_;
  } else {
    consecutiveHealthy_ = 0;
    // Offender: the lowest-ranked process carrying the worst verdict, so
    // every rank names the same one in its report.
    const std::int64_t mine = cv.local.verdict == cv.verdict
                                  ? static_cast<std::int64_t>(comm.rank())
                                  : static_cast<std::int64_t>(comm.size());
    cv.offenderRank =
        static_cast<int>(comm.allreduce(mine, vcluster::ReduceOp::Min));

    // Ship the offender's diagnostic to every rank so the eventual dump is
    // complete even on ranks whose local fields are still clean.
    std::string detail =
        comm.rank() == cv.offenderRank ? cv.local.detail : std::string();
    std::uint64_t len = detail.size();
    comm.bcast(cv.offenderRank, &len, sizeof(len));
    detail.resize(len);
    if (len > 0) comm.bcast(cv.offenderRank, detail.data(), len);
    cv.offenderDetail = std::move(detail);

    events_.push_back(
        {EventKind::Scan, step, cv.verdict, cv.offenderRank,
         cv.offenderDetail});
  }
  return cv;
}

void HealthGuard::noteRollback(std::size_t fromStep, std::size_t toStep,
                               double newDt) {
  ++rollbacksUsed_;
  consecutiveHealthy_ = 0;
  monitor_.resetAfterRollback();
  telemetry::count(telemetry::Counter::Rollbacks);
  telemetry::count(telemetry::Counter::DtTightenEvents);
  std::ostringstream os;
  os << "rolled back from step " << fromStep << " to step " << toStep
     << ", dt tightened to " << newDt << " s (rollback " << rollbacksUsed_
     << "/" << config_.maxRollbacks << ")";
  events_.push_back(
      {EventKind::Rollback, fromStep, Verdict::Degraded, -1, os.str()});
}

void HealthGuard::noteRewiden(std::size_t step, double newDt) {
  consecutiveHealthy_ = 0;  // demand a fresh streak before the next widening
  telemetry::count(telemetry::Counter::DtRewidenEvents);
  std::ostringstream os;
  os << "dt re-widened to " << newDt << " s after "
     << config_.dtRewidenWindow << " consecutive Healthy scans";
  events_.push_back(
      {EventKind::DtRewiden, step, Verdict::Healthy, -1, os.str()});
}

void HealthGuard::noteCheckpointVeto(std::size_t step) {
  telemetry::count(telemetry::Counter::CheckpointVetoes);
  events_.push_back({EventKind::CheckpointVeto, step, Verdict::Degraded, -1,
                     "refused to persist a non-finite state"});
}

void HealthGuard::beat(int rank, std::size_t step) {
  if (config_.heartbeats != nullptr) config_.heartbeats->beat(rank, step);
}

std::string HealthGuard::abortDump(const ClusterVerdict& cv,
                                   std::size_t step) {
  std::ostringstream os;
  os << "[health] FATAL at step " << step << ": "
     << (cv.offenderDetail.empty() ? "numerical blow-up"
                                   : cv.offenderDetail)
     << " (offending rank " << cv.offenderRank << ")";
  os << "; rollbacks used " << rollbacksUsed_ << "/" << config_.maxRollbacks;
  const auto& hist = monitor_.peakHistory();
  if (!hist.empty()) {
    os << "; local peak-velocity history [";
    for (std::size_t n = 0; n < hist.size(); ++n)
      os << (n > 0 ? " " : "") << hist[n];
    os << "]";
  }
  os << "; trail:";
  for (const auto& e : events_)
    os << " {" << toString(e.kind) << " step " << e.step << " "
       << toString(e.verdict) << (e.detail.empty() ? "" : ": " + e.detail)
       << "}";
  events_.push_back(
      {EventKind::Abort, step, Verdict::Fatal, cv.offenderRank, os.str()});
  return os.str();
}

}  // namespace awp::health
