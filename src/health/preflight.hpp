#pragma once
// Pre-flight validation (layer 1 of the health guard): collective fail-fast
// checks before step 0. A capability job discovers a bad material cell, an
// unstable dt, or an impossible absorbing-layer width in seconds instead of
// after hours of queue wait plus a blow-up at step 40k. Every rank
// validates its own block; the verdicts are combined with one
// allreduce(Max) so all ranks abort *together* with a per-rank diagnostic
// instead of one rank throwing while its neighbors deadlock in a halo
// exchange.
//
// Checks:
//   material  — Vp/Vs/rho positive, finite and physical; Vp/Vs ratio sane
//               (below sqrt(2) means a negative λ: Fatal); Q derivable
//   stability — dt against the local CFL limit of this rank's material
//   boundary  — sponge/PML width vs the global dims (overlapping layers)
//               and, for PML, vs this rank's subdomain extent (split-field
//               zones cannot span rank boundaries)
//   topology  — halo width vs this rank's subdomain extent on every
//               partitioned axis: an extreme decomposition can shave a
//               rank's block below the ghost-layer depth, at which point
//               the planes it must send overlap the planes it receives
//   sources   — inside the global grid (Fatal: today they are silently
//               dropped by SourceSet::bind) and time-windows inside the
//               planned run (Degraded: the tail would be truncated)

#include <cstddef>
#include <vector>

#include "grid/staggered_grid.hpp"
#include "health/verdict.hpp"
#include "vcluster/comm.hpp"

namespace awp::health {

struct PreflightLimits {
  float minVpVsRatio = 1.415f;  // just above sqrt(2); below ⇒ λ < 0
  float maxVpVsRatio = 6.0f;    // beyond ⇒ Degraded (suspicious, not fatal)
  float maxVp = 15000.0f;       // m/s — nothing in the crust is faster
  float minRho = 500.0f;        // kg/m³ — Degraded outside [minRho, maxRho]
  float maxRho = 8000.0f;
  double cflSlack = 1.000001;   // dt may exceed stableDt by this factor
};

enum class BoundaryKind { None, Sponge, Pml };

struct SourceWindow {
  std::size_t gi = 0, gj = 0, gk = 0;  // global grid indices
  std::size_t steps = 0;               // history length in solver steps
};

// Everything the checks need, assembled by the caller (the solver) so this
// layer stays independent of core.
struct PreflightContext {
  const grid::StaggeredGrid* grid = nullptr;  // material already loaded
  grid::GridDims globalDims;
  double dt = 0.0;
  double h = 0.0;
  BoundaryKind boundary = BoundaryKind::None;
  int boundaryWidth = 0;
  // Which physical faces this rank touches (the damped faces: the four
  // sides and the bottom; the free surface is never damped).
  bool touchesXMin = false, touchesXMax = false;
  bool touchesYMin = false, touchesYMax = false;
  bool touchesBottom = false;
  // Process decomposition (ranks per axis) and the ghost-layer depth, for
  // the halo-vs-extent topology check. haloWidth = 0 skips the check (for
  // callers that have no topology, e.g. single-rank harnesses).
  int decompX = 1, decompY = 1, decompZ = 1;
  std::size_t haloWidth = 0;
  std::size_t plannedSteps = 0;
  std::vector<SourceWindow> sources;
  PreflightLimits limits;
};

struct PreflightReport {
  Verdict verdict = Verdict::Healthy;
  std::vector<Issue> issues;
};

// Local (this rank only) validation.
PreflightReport runPreflight(const PreflightContext& ctx);

// Collective validation: runs the local checks, allgathers the verdicts,
// and when any rank is Fatal throws awp::Error on EVERY rank with the
// per-rank verdict table plus this rank's own findings. Returns the local
// report (possibly Degraded) otherwise.
PreflightReport collectivePreflight(vcluster::Communicator& comm,
                                    const PreflightContext& ctx);

// --- Rupture-solver preflight ---------------------------------------------
// Validates dynamic-rupture inputs the same way the material path is
// validated: friction parameters must be physical, and the initial stress
// must sit below the static strength everywhere except a bounded
// nucleation patch (a fault that is supercritical over a large fraction of
// its area releases everything in step 0; one that is supercritical
// nowhere can never nucleate).

// One locally owned fault node, as sampled by the rupture solver.
struct RuptureNode {
  std::size_t gi = 0, gk = 0;  // global fault-plane indices (strike, depth)
  double tau0 = 0.0;           // initial strike shear [Pa]
  double sigmaN = 0.0;         // effective normal stress (negative) [Pa]
  double depth = 0.0;          // [m]
};

struct RupturePreflightContext {
  // Friction parameters, copied so this layer stays independent of
  // src/rupture (mirrors PreflightContext's relationship to core).
  double muS = 0.75;
  double muD = 0.50;
  double dc = 0.3;        // m
  double dcSurface = 1.0; // m
  double cohesion = 1.0e6;  // Pa
  // Supercritical nodes (tau0 above static strength) tolerated as the
  // nucleation patch, as a fraction of the global fault area. Fatal above.
  double maxSupercriticalFraction = 0.25;
  std::vector<RuptureNode> nodes;  // locally owned fault nodes
};

// Local validation; reports this rank's supercritical node count through
// `supercriticalLocal` (the global fraction needs a reduction).
PreflightReport runRupturePreflight(const RupturePreflightContext& ctx,
                                    std::size_t* supercriticalLocal);

// Collective: local checks + cluster-wide supercritical fraction, then the
// same allgather-and-throw-together protocol as collectivePreflight.
PreflightReport collectiveRupturePreflight(vcluster::Communicator& comm,
                                           const RupturePreflightContext& ctx);

}  // namespace awp::health
