#include "health/preflight.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace awp::health {

using grid::kHalo;

namespace {

// Bound the number of per-cell findings so a fully-broken block produces a
// readable report, not a million lines.
constexpr std::size_t kMaxMaterialIssues = 8;

void checkMaterial(const PreflightContext& ctx, PreflightReport& report) {
  const auto& g = *ctx.grid;
  const auto& d = g.dims();
  const auto& lim = ctx.limits;
  std::size_t flagged = 0;
  for (std::size_t k = kHalo; k < kHalo + d.nz; ++k)
    for (std::size_t j = kHalo; j < kHalo + d.ny; ++j)
      for (std::size_t i = kHalo; i < kHalo + d.nx; ++i) {
        const double rho = g.rho(i, j, k);
        const double mu = g.mu(i, j, k);
        const double lam = g.lam(i, j, k);
        Verdict sev = Verdict::Healthy;
        std::string what;
        if (!std::isfinite(rho) || !std::isfinite(mu) ||
            !std::isfinite(lam)) {
          sev = Verdict::Fatal;
          what = "non-finite material";
        } else if (rho <= 0.0 || mu <= 0.0) {
          sev = Verdict::Fatal;
          what = "non-positive rho or mu";
        } else {
          const double vs = std::sqrt(mu / rho);
          const double vp = std::sqrt((lam + 2.0 * mu) / rho);
          const double ratio = vp / vs;
          if (lam < 0.0 || ratio < lim.minVpVsRatio) {
            sev = Verdict::Fatal;
            what = "Vp/Vs = " + std::to_string(ratio) +
                   " below sqrt(2) (negative lambda)";
          } else if (vp > lim.maxVp) {
            sev = Verdict::Fatal;
            what = "Vp = " + std::to_string(vp) + " m/s unphysical";
          } else if (ratio > lim.maxVpVsRatio) {
            sev = Verdict::Degraded;
            what = "Vp/Vs = " + std::to_string(ratio) + " suspiciously high";
          } else if (rho < lim.minRho || rho > lim.maxRho) {
            sev = Verdict::Degraded;
            what = "rho = " + std::to_string(rho) + " kg/m^3 out of range";
          }
        }
        if (sev == Verdict::Healthy) continue;
        report.verdict = worse(report.verdict, sev);
        if (flagged++ < kMaxMaterialIssues) {
          std::ostringstream os;
          os << "material at local (" << i - kHalo << "," << j - kHalo << ","
             << k - kHalo << "): " << what;
          report.issues.push_back({sev, os.str()});
        }
      }
  if (flagged > kMaxMaterialIssues)
    report.issues.push_back(
        {report.verdict, std::to_string(flagged - kMaxMaterialIssues) +
                             " further material cells flagged"});
}

void checkStability(const PreflightContext& ctx, PreflightReport& report) {
  if (!(ctx.dt > 0.0) || !std::isfinite(ctx.dt)) {
    report.verdict = Verdict::Fatal;
    report.issues.push_back(
        {Verdict::Fatal, "dt = " + std::to_string(ctx.dt) + " not positive"});
    return;
  }
  // Only meaningful once the material is loaded; stableDt throws otherwise.
  const double local = ctx.grid->stableDt();
  if (ctx.dt > local * ctx.limits.cflSlack) {
    report.verdict = Verdict::Fatal;
    std::ostringstream os;
    os << "CFL violated: dt = " << ctx.dt << " s exceeds this rank's stable "
       << "limit " << local << " s (h = " << ctx.h << " m)";
    report.issues.push_back({Verdict::Fatal, os.str()});
  }
}

void checkBoundary(const PreflightContext& ctx, PreflightReport& report) {
  if (ctx.boundary == BoundaryKind::None || ctx.boundaryWidth <= 0) return;
  const auto w = static_cast<std::size_t>(ctx.boundaryWidth);
  const auto& g = ctx.globalDims;
  const char* name = ctx.boundary == BoundaryKind::Pml ? "PML" : "sponge";
  if (2 * w >= g.nx || 2 * w >= g.ny || w >= g.nz) {
    report.verdict = Verdict::Fatal;
    std::ostringstream os;
    os << name << " width " << w << " does not fit the global grid "
       << g.nx << "x" << g.ny << "x" << g.nz
       << " (opposing layers would overlap)";
    report.issues.push_back({Verdict::Fatal, os.str()});
    return;
  }
  // Per-rank extent: the sponge taper is a pure per-cell multiply driven by
  // global position, so a layer spanning ranks still works (Degraded: the
  // decomposition is suspicious). PML split-field zones hold private state
  // that is never halo-exchanged, so a zone must not cross a rank boundary:
  // width > a face rank's extent is Fatal.
  const auto& d = ctx.grid->dims();
  auto check = [&](bool touches, std::size_t extent, const char* face) {
    if (!touches || extent >= w) return;
    const Verdict sev = ctx.boundary == BoundaryKind::Pml ? Verdict::Fatal
                                                          : Verdict::Degraded;
    report.verdict = worse(report.verdict, sev);
    std::ostringstream os;
    os << name << " width " << w << " exceeds this rank's " << face
       << " extent " << extent
       << (sev == Verdict::Fatal ? " (split zones cannot span ranks)"
                                 : " (layer spans rank boundaries)");
    report.issues.push_back({sev, os.str()});
  };
  check(ctx.touchesXMin || ctx.touchesXMax, d.nx, "x");
  check(ctx.touchesYMin || ctx.touchesYMax, d.ny, "y");
  check(ctx.touchesBottom, d.nz, "z");
}

// Halo width vs subdomain extent on every partitioned axis. An extreme
// decomposition (many ranks on a short axis) can shave a rank's block below
// the ghost-layer depth: the planes it must send a neighbor would include
// cells it only receives from the opposite neighbor, so the exchange can
// never converge — Fatal. Below twice the halo width the minus- and
// plus-side source regions overlap: still well-defined, but the surface-to-
// volume ratio says the decomposition is pathological — Degraded. The
// verdict is combined across ranks by collectivePreflight, so one sliver
// rank (block remainders land on the low coordinates) fails everyone
// together instead of deadlocking the halo exchange.
void checkTopology(const PreflightContext& ctx, PreflightReport& report) {
  if (ctx.haloWidth == 0) return;  // caller provided no topology
  const auto& d = ctx.grid->dims();
  const std::size_t w = ctx.haloWidth;
  auto axis = [&](int parts, std::size_t extent, const char* name) {
    if (parts <= 1) return;  // unpartitioned: nothing exchanged this way
    if (extent < w) {
      report.verdict = Verdict::Fatal;
      std::ostringstream os;
      os << "decomposition too fine: this rank's " << name << " extent "
         << extent << " is below the halo width " << w << " (" << parts
         << "-way split along " << name
         << "; ghost planes sent to one neighbor would have to contain "
            "cells received from the other)";
      report.issues.push_back({Verdict::Fatal, os.str()});
    } else if (extent < 2 * w) {
      report.verdict = worse(report.verdict, Verdict::Degraded);
      std::ostringstream os;
      os << name << " extent " << extent << " is below twice the halo width "
         << w << " (" << parts << "-way split along " << name
         << "; exchange regions overlap — decomposition is extreme)";
      report.issues.push_back({Verdict::Degraded, os.str()});
    }
  };
  axis(ctx.decompX, d.nx, "x");
  axis(ctx.decompY, d.ny, "y");
  axis(ctx.decompZ, d.nz, "z");
}

void checkSources(const PreflightContext& ctx, PreflightReport& report) {
  const auto& g = ctx.globalDims;
  std::size_t outside = 0, truncated = 0;
  for (const auto& s : ctx.sources) {
    if (s.gi >= g.nx || s.gj >= g.ny || s.gk >= g.nz) ++outside;
    if (ctx.plannedSteps > 0 && s.steps > ctx.plannedSteps) ++truncated;
  }
  if (outside > 0) {
    report.verdict = Verdict::Fatal;
    report.issues.push_back(
        {Verdict::Fatal, std::to_string(outside) +
                             " source(s) outside the global grid (would be "
                             "silently dropped)"});
  }
  if (truncated > 0) {
    report.verdict = worse(report.verdict, Verdict::Degraded);
    report.issues.push_back(
        {Verdict::Degraded,
         std::to_string(truncated) + " source time-window(s) extend past the "
                                     "planned " +
             std::to_string(ctx.plannedSteps) + " steps (tail truncated)"});
  }
}

}  // namespace

PreflightReport runPreflight(const PreflightContext& ctx) {
  AWP_CHECK_MSG(ctx.grid != nullptr, "preflight needs a grid");
  PreflightReport report;
  checkMaterial(ctx, report);
  checkStability(ctx, report);
  checkBoundary(ctx, report);
  checkTopology(ctx, report);
  checkSources(ctx, report);
  return report;
}

PreflightReport collectivePreflight(vcluster::Communicator& comm,
                                    const PreflightContext& ctx) {
  const PreflightReport report = runPreflight(ctx);
  const auto verdicts = comm.allgather(encode(report.verdict));
  const Verdict cluster =
      decode(*std::max_element(verdicts.begin(), verdicts.end()));
  if (cluster != Verdict::Fatal) return report;

  std::ostringstream os;
  os << "preflight failed on rank " << comm.rank() << " [";
  for (int r = 0; r < comm.size(); ++r)
    os << (r > 0 ? " " : "") << "r" << r << "="
       << toString(decode(verdicts[static_cast<std::size_t>(r)]));
  os << "]";
  if (!report.issues.empty())
    os << ": " << describeIssues(report.issues);
  else
    os << ": this rank is clean; see the fatal rank(s) above";
  throw Error(os.str());
}

// --- Rupture-solver preflight ---------------------------------------------

namespace {

void checkFrictionParams(const RupturePreflightContext& ctx,
                         PreflightReport& report) {
  auto fatal = [&](const std::string& text) {
    report.verdict = Verdict::Fatal;
    report.issues.push_back({Verdict::Fatal, text});
  };
  if (!std::isfinite(ctx.muS) || !std::isfinite(ctx.muD) ||
      !std::isfinite(ctx.dc) || !std::isfinite(ctx.dcSurface) ||
      !std::isfinite(ctx.cohesion)) {
    fatal("non-finite friction parameter");
    return;
  }
  if (ctx.muS < 0.0)
    fatal("static friction muS = " + std::to_string(ctx.muS) + " negative");
  if (ctx.muD < 0.0)
    fatal("dynamic friction muD = " + std::to_string(ctx.muD) + " negative");
  if (ctx.cohesion < 0.0)
    fatal("cohesion = " + std::to_string(ctx.cohesion) + " Pa negative");
  // A zero or negative slip-weakening distance makes the strength drop
  // instantaneous: the weakening integral (fracture energy) vanishes and
  // the rupture front becomes grid-dependent.
  if (!(ctx.dc > 0.0))
    fatal("slip-weakening distance dc = " + std::to_string(ctx.dc) +
          " m must be positive");
  if (!(ctx.dcSurface > 0.0))
    fatal("surface slip-weakening distance dcSurface = " +
          std::to_string(ctx.dcSurface) + " m must be positive");
  // Slip-strengthening (muD > muS) is not fatal — it arrests rupture — but
  // it is almost certainly a transposed pair.
  if (ctx.muD > ctx.muS) {
    report.verdict = worse(report.verdict, Verdict::Degraded);
    report.issues.push_back(
        {Verdict::Degraded, "muD = " + std::to_string(ctx.muD) +
                                " exceeds muS = " + std::to_string(ctx.muS) +
                                " (slip-strengthening fault cannot rupture)"});
  }
}

// Per-node checks; returns the number of locally supercritical nodes
// (initial shear above the static strength — the intended nucleation
// patch, when bounded).
std::size_t checkRuptureNodes(const RupturePreflightContext& ctx,
                              PreflightReport& report) {
  std::size_t supercritical = 0, flagged = 0;
  auto flag = [&](Verdict sev, const RuptureNode& n, const std::string& what) {
    report.verdict = worse(report.verdict, sev);
    if (flagged++ < kMaxMaterialIssues) {
      std::ostringstream os;
      os << "fault node (" << n.gi << "," << n.gk << ") at depth " << n.depth
         << " m: " << what;
      report.issues.push_back({sev, os.str()});
    }
  };
  for (const RuptureNode& n : ctx.nodes) {
    if (!std::isfinite(n.tau0) || !std::isfinite(n.sigmaN) ||
        !std::isfinite(n.depth)) {
      flag(Verdict::Fatal, n, "non-finite initial stress");
      continue;
    }
    if (n.sigmaN > 0.0) {
      flag(Verdict::Degraded, n,
           "tensile normal stress sigmaN = " + std::to_string(n.sigmaN) +
               " Pa (fault clamps to zero frictional strength)");
    }
    // Static strength with the unweakened (slip = 0) friction coefficient;
    // compression is negative sigmaN, matching
    // SlipWeakeningFriction::strength.
    const double strength =
        std::max(0.0, ctx.cohesion + ctx.muS * std::max(0.0, -n.sigmaN));
    if (n.tau0 > strength) ++supercritical;
  }
  if (flagged > kMaxMaterialIssues)
    report.issues.push_back(
        {report.verdict, std::to_string(flagged - kMaxMaterialIssues) +
                             " further fault nodes flagged"});
  return supercritical;
}

// The supercritical-fraction verdicts, shared by the local and collective
// paths (counts are cluster-wide in the collective path).
void judgeSupercritical(const RupturePreflightContext& ctx,
                        std::int64_t supercritical, std::int64_t total,
                        PreflightReport& report) {
  if (total <= 0) return;
  const double fraction =
      static_cast<double>(supercritical) / static_cast<double>(total);
  if (fraction > ctx.maxSupercriticalFraction) {
    report.verdict = Verdict::Fatal;
    std::ostringstream os;
    os << supercritical << " of " << total << " fault nodes ("
       << fraction * 100.0 << "%) start above static strength — exceeds the "
       << ctx.maxSupercriticalFraction * 100.0
       << "% nucleation-patch allowance (the whole fault would release at "
          "step 0)";
    report.issues.push_back({Verdict::Fatal, os.str()});
  } else if (supercritical == 0) {
    report.verdict = worse(report.verdict, Verdict::Degraded);
    report.issues.push_back(
        {Verdict::Degraded,
         "no fault node starts above static strength: rupture cannot "
         "nucleate (check the nucleation patch / nucExcess)"});
  }
}

}  // namespace

PreflightReport runRupturePreflight(const RupturePreflightContext& ctx,
                                    std::size_t* supercriticalLocal) {
  PreflightReport report;
  checkFrictionParams(ctx, report);
  const std::size_t supercritical = checkRuptureNodes(ctx, report);
  if (supercriticalLocal != nullptr) *supercriticalLocal = supercritical;
  return report;
}

PreflightReport collectiveRupturePreflight(
    vcluster::Communicator& comm, const RupturePreflightContext& ctx) {
  std::size_t supercriticalLocal = 0;
  PreflightReport report = runRupturePreflight(ctx, &supercriticalLocal);

  // Cluster-wide supercritical fraction: the fault is decomposed across
  // ranks, so the nucleation patch may live entirely on one rank — only
  // the global fraction is meaningful.
  const auto supercritical = comm.allreduce(
      static_cast<std::int64_t>(supercriticalLocal), vcluster::ReduceOp::Sum);
  const auto total =
      comm.allreduce(static_cast<std::int64_t>(ctx.nodes.size()),
                     vcluster::ReduceOp::Sum);
  judgeSupercritical(ctx, supercritical, total, report);

  const auto verdicts = comm.allgather(encode(report.verdict));
  const Verdict cluster =
      decode(*std::max_element(verdicts.begin(), verdicts.end()));
  if (cluster != Verdict::Fatal) return report;

  std::ostringstream os;
  os << "rupture preflight failed on rank " << comm.rank() << " [";
  for (int r = 0; r < comm.size(); ++r)
    os << (r > 0 ? " " : "") << "r" << r << "="
       << toString(decode(verdicts[static_cast<std::size_t>(r)]));
  os << "]";
  if (!report.issues.empty())
    os << ": " << describeIssues(report.issues);
  else
    os << ": this rank is clean; see the fatal rank(s) above";
  throw Error(os.str());
}

}  // namespace awp::health
