#include "health/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

namespace awp::health {

using grid::kHalo;

namespace {

constexpr std::size_t kPeakHistoryDepth = 16;

struct Offence {
  bool found = false;
  const char* field = nullptr;
  std::size_t i = 0, j = 0, k = 0;
  double value = 0.0;
};

// Scan one field's interior; returns the first non-finite sample.
bool scanField(const Array3f& f, const grid::GridDims& d, const char* name,
               Offence& off) {
  for (std::size_t k = kHalo; k < kHalo + d.nz; ++k)
    for (std::size_t j = kHalo; j < kHalo + d.ny; ++j)
      for (std::size_t i = kHalo; i < kHalo + d.nx; ++i) {
        const float v = f(i, j, k);
        if (!std::isfinite(v)) {
          off = {true, name, i, j, k, static_cast<double>(v)};
          return true;
        }
      }
  return false;
}

}  // namespace

bool FieldMonitor::allFinite(const grid::StaggeredGrid& g) {
  Offence off;
  const auto& d = g.dims();
  const std::pair<const Array3f*, const char*> fields[] = {
      {&g.u, "u"},   {&g.v, "v"},   {&g.w, "w"},
      {&g.xx, "xx"}, {&g.yy, "yy"}, {&g.zz, "zz"},
      {&g.xy, "xy"}, {&g.xz, "xz"}, {&g.yz, "yz"}};
  for (const auto& [f, name] : fields)
    if (scanField(*f, d, name, off)) return false;
  return true;
}

ScanResult FieldMonitor::scan(const grid::StaggeredGrid& g) {
  ScanResult result;
  const auto& d = g.dims();

  // Peak velocity over the interior (also detects the first non-finite
  // velocity sample without a second pass).
  Offence off;
  double peak = 0.0;
  const std::pair<const Array3f*, const char*> velocities[] = {
      {&g.u, "u"}, {&g.v, "v"}, {&g.w, "w"}};
  for (const auto& [f, name] : velocities) {
    for (std::size_t k = kHalo; k < kHalo + d.nz && !off.found; ++k)
      for (std::size_t j = kHalo; j < kHalo + d.ny && !off.found; ++j)
        for (std::size_t i = kHalo; i < kHalo + d.nx; ++i) {
          const float v = (*f)(i, j, k);
          if (!std::isfinite(v)) {
            off = {true, name, i, j, k, static_cast<double>(v)};
            break;
          }
          peak = std::max(peak, static_cast<double>(std::fabs(v)));
        }
    if (off.found) break;
  }
  const std::pair<const Array3f*, const char*> stresses[] = {
      {&g.xx, "xx"}, {&g.yy, "yy"}, {&g.zz, "zz"},
      {&g.xy, "xy"}, {&g.xz, "xz"}, {&g.yz, "yz"}};
  for (const auto& [f, name] : stresses) {
    if (off.found) break;
    scanField(*f, d, name, off);
  }
  result.peakVelocity = peak;

  if (off.found) {
    result.verdict = Verdict::Fatal;
    result.field = off.field;
    result.i = off.i;
    result.j = off.j;
    result.k = off.k;
    result.value = off.value;
    std::ostringstream os;
    os << "non-finite " << off.field << " = " << off.value << " at local ("
       << off.i - kHalo << "," << off.j - kHalo << "," << off.k - kHalo
       << ")";
    result.detail = os.str();
    consecutiveDegraded_ = 0;
  } else {
    const double prev =
        peakHistory_.empty() ? 0.0 : peakHistory_.back();
    if (prev > config_.velocityFloor &&
        peak > config_.growthLimit * prev) {
      ++consecutiveDegraded_;
      const bool fatal = config_.degradedFatalAfter > 0 &&
                         consecutiveDegraded_ >= config_.degradedFatalAfter;
      result.verdict = fatal ? Verdict::Fatal : Verdict::Degraded;
      std::ostringstream os;
      os << "peak velocity grew " << peak / prev << "x in one window ("
         << prev << " -> " << peak << " m/s), " << consecutiveDegraded_
         << " consecutive" << (fatal ? " — treating as blow-up" : "");
      result.detail = os.str();
    } else {
      consecutiveDegraded_ = 0;
    }
  }

  peakHistory_.push_back(peak);
  while (peakHistory_.size() > kPeakHistoryDepth) peakHistory_.pop_front();
  return result;
}

void FieldMonitor::resetAfterRollback() {
  peakHistory_.clear();
  consecutiveDegraded_ = 0;
}

}  // namespace awp::health
