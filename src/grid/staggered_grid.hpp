#pragma once
// Local staggered-grid state for one rank's subdomain: the nine wavefield
// components of the velocity–stress formulation (§II.A–B), the material
// arrays (with reciprocal Lamé parameters stored as in §IV.B), and the
// coarse-grained memory variables for anelastic attenuation (§II.A).
//
// Staggering convention (see src/core/kernels.cpp for the stencils):
//   xx, yy, zz at cell centers (i, j, k)
//   u  at (i-1/2, j,     k    )     xy at (i-1/2, j-1/2, k    )
//   v  at (i,     j-1/2, k    )     xz at (i-1/2, j,     k-1/2)
//   w  at (i,     j,     k-1/2)     yz at (i,     j-1/2, k-1/2)
//
// Storage: every field is allocated with a 2-cell halo on all sides; the
// interior spans raw indices [kHalo, kHalo + n) per axis. k increases
// upward: the free surface is the TOP interior plane k = kHalo + nz - 1.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "grid/field_id.hpp"
#include "mesh/partitioner.hpp"
#include "util/array3.hpp"
#include "vmodel/material.hpp"

namespace awp::grid {

inline constexpr std::size_t kHalo = 2;

struct GridDims {
  std::size_t nx = 0, ny = 0, nz = 0;
  [[nodiscard]] std::size_t count() const { return nx * ny * nz; }
};

// Attenuation band for the coarse-grained memory variables: 8 relaxation
// times, log-spaced over [1/(2π fMax), 1/(2π fMin)], distributed over the
// 2x2x2 positions of each coarse-grained cell (Day 1998; §II.A: "a large
// number of relaxation times (eight in our calculations)").
struct AttenuationConfig {
  bool enabled = false;
  double fMin = 0.05;  // Hz
  double fMax = 2.0;   // Hz
};

class StaggeredGrid {
 public:
  StaggeredGrid(GridDims dims, double h, double dt,
                AttenuationConfig attenuation = {});

  [[nodiscard]] const GridDims& dims() const { return dims_; }
  [[nodiscard]] double h() const { return h_; }
  [[nodiscard]] double dt() const { return dt_; }
  // Retighten the time step (health-guard rollback). Safe mid-run: the
  // kernels and PML updates read dt() fresh every step, and the saved
  // wavefield state is dt-independent.
  void setDt(double dt);
  [[nodiscard]] const AttenuationConfig& attenuation() const {
    return attenuation_;
  }

  // Raw (halo-inclusive) extents.
  [[nodiscard]] std::size_t sx() const { return dims_.nx + 2 * kHalo; }
  [[nodiscard]] std::size_t sy() const { return dims_.ny + 2 * kHalo; }
  [[nodiscard]] std::size_t sz() const { return dims_.nz + 2 * kHalo; }

  // Wavefields.
  Array3f u, v, w;
  Array3f xx, yy, zz, xy, xz, yz;

  // Material. Both direct and reciprocal Lamé arrays are kept: the plain
  // kernel uses lam/mu with per-use divisions, the optimized kernels use
  // the stored reciprocals (§IV.B).
  Array3f rho;
  Array3f lam, mu;
  Array3f lami, mui;  // 1/λ, 1/μ

  // Attenuation state: one memory variable per stress component per cell,
  // plus the per-cell relaxation time and modulus-defect factors.
  Array3f rxx, ryy, rzz, rxy, rxz, ryz;
  Array3f tauSigma;   // relaxation time τ per cell [s]
  Array3f qsInv;      // 2/Qs factor per cell (0 disables)
  Array3f qpInv;      // 2/Qp factor per cell

  [[nodiscard]] Array3f& field(FieldId f);
  [[nodiscard]] const Array3f& field(FieldId f) const;

  // --- Material loading ----------------------------------------------------
  // Fill the interior from a partitioned mesh block (dims must match), then
  // derive lam/mu/reciprocals and attenuation factors (Qs = 50 Vs etc.).
  // Halo cells are clamp-filled from the nearest interior cell; interior
  // rank boundaries should afterwards be fixed up with a halo exchange of
  // the material arrays.
  void setMaterial(const mesh::MeshBlock& block);
  void setUniformMaterial(const vmodel::Material& m);

  // Maximum stable time step for this grid's material (CFL of the 4th-order
  // staggered scheme, with a 0.45 safety factor).
  [[nodiscard]] double stableDt() const;
  [[nodiscard]] double maxVp() const;

  // --- Checkpoint support ---------------------------------------------------
  // Serialize / restore all time-dependent state (wavefields + memory
  // variables). Material is excluded: it is re-derivable from the mesh.
  [[nodiscard]] std::vector<std::byte> saveState() const;
  void restoreState(std::span<const std::byte> state);

  // Energy-like norm of the velocity field (for tests and absorbing
  // boundary quality measurements): sum of rho * |v|^2 over the interior.
  [[nodiscard]] double kineticEnergy() const;

 private:
  void deriveModuli();
  void clampFillMaterialHalo();

  GridDims dims_;
  double h_;
  double dt_;
  AttenuationConfig attenuation_;
};

}  // namespace awp::grid
