#include "grid/staggered_grid.hpp"

#include <cmath>
#include <cstring>
#include <string>

#include "util/error.hpp"

namespace awp::grid {

StaggeredGrid::StaggeredGrid(GridDims dims, double h, double dt,
                             AttenuationConfig attenuation)
    : dims_(dims), h_(h), dt_(dt), attenuation_(attenuation) {
  AWP_CHECK(dims.nx >= 1 && dims.ny >= 1 && dims.nz >= 1);
  AWP_CHECK(h > 0.0 && dt > 0.0);
  const std::size_t ax = sx(), ay = sy(), az = sz();
  for (Array3f* f : {&u, &v, &w, &xx, &yy, &zz, &xy, &xz, &yz, &rho, &lam,
                     &mu, &lami, &mui})
    f->resize(ax, ay, az);
  if (attenuation_.enabled) {
    for (Array3f* f :
         {&rxx, &ryy, &rzz, &rxy, &rxz, &ryz, &tauSigma, &qsInv, &qpInv})
      f->resize(ax, ay, az);
    // Coarse-grained relaxation times: position (i%2, j%2, k%2) selects one
    // of 8 log-spaced values across the target frequency band.
    const double tauMin = 1.0 / (2.0 * M_PI * attenuation_.fMax);
    const double tauMax = 1.0 / (2.0 * M_PI * attenuation_.fMin);
    for (std::size_t k = 0; k < az; ++k)
      for (std::size_t j = 0; j < ay; ++j)
        for (std::size_t i = 0; i < ax; ++i) {
          const int m = static_cast<int>(i % 2) + 2 * static_cast<int>(j % 2) +
                        4 * static_cast<int>(k % 2);
          tauSigma(i, j, k) = static_cast<float>(
              tauMin * std::pow(tauMax / tauMin, m / 7.0));
        }
  }
}

void StaggeredGrid::setDt(double dt) {
  AWP_CHECK_MSG(dt > 0.0, "dt must be positive");
  dt_ = dt;
}

Array3f& StaggeredGrid::field(FieldId f) {
  switch (f) {
    case FieldId::U:
      return u;
    case FieldId::V:
      return v;
    case FieldId::W:
      return w;
    case FieldId::XX:
      return xx;
    case FieldId::YY:
      return yy;
    case FieldId::ZZ:
      return zz;
    case FieldId::XY:
      return xy;
    case FieldId::XZ:
      return xz;
    case FieldId::YZ:
      return yz;
    case FieldId::kCount:
      break;
  }
  throw Error("bad field id");
}

const Array3f& StaggeredGrid::field(FieldId f) const {
  return const_cast<StaggeredGrid*>(this)->field(f);
}

void StaggeredGrid::setUniformMaterial(const vmodel::Material& m) {
  if (const char* issue = vmodel::materialIssue(m))
    throw Error(std::string("bad uniform material: ") + issue +
                " (vp=" + std::to_string(m.vp) + " vs=" +
                std::to_string(m.vs) + " rho=" + std::to_string(m.rho) + ")");
  rho.fill(m.rho);
  const auto muV = static_cast<float>(vmodel::muOf(m));
  const auto lamV = static_cast<float>(vmodel::lambdaOf(m));
  mu.fill(muV);
  lam.fill(lamV);
  deriveModuli();
  if (attenuation_.enabled) {
    qsInv.fill(static_cast<float>(2.0 / vmodel::qsOf(m.vs)));
    qpInv.fill(static_cast<float>(2.0 / vmodel::qpOf(m.vs)));
  }
}

void StaggeredGrid::setMaterial(const mesh::MeshBlock& block) {
  AWP_CHECK_MSG(block.spec.x.count() == dims_.nx &&
                    block.spec.y.count() == dims_.ny &&
                    block.spec.z.count() == dims_.nz,
                "mesh block dimensions do not match grid dims");
  // The mesh stores k as depth slices (k = 0 at the surface); the grid
  // stores k increasing upward (surface at the top interior plane).
  for (std::size_t k = 0; k < dims_.nz; ++k) {
    const std::size_t meshK = dims_.nz - 1 - k;
    for (std::size_t j = 0; j < dims_.ny; ++j)
      for (std::size_t i = 0; i < dims_.nx; ++i) {
        const vmodel::Material& m = block.at(i, j, meshK);
        if (const char* issue = vmodel::materialIssue(m))
          throw Error(std::string("bad material: ") + issue +
                      " at mesh cell (" + std::to_string(i) + ", " +
                      std::to_string(j) + ", " + std::to_string(meshK) +
                      "): vp=" + std::to_string(m.vp) + " vs=" +
                      std::to_string(m.vs) + " rho=" + std::to_string(m.rho));
        const std::size_t gi = i + kHalo, gj = j + kHalo, gk = k + kHalo;
        rho(gi, gj, gk) = m.rho;
        mu(gi, gj, gk) = static_cast<float>(vmodel::muOf(m));
        lam(gi, gj, gk) = static_cast<float>(vmodel::lambdaOf(m));
        if (attenuation_.enabled) {
          qsInv(gi, gj, gk) =
              static_cast<float>(2.0 / vmodel::qsOf(m.vs));
          qpInv(gi, gj, gk) =
              static_cast<float>(2.0 / vmodel::qpOf(m.vs));
        }
      }
  }
  clampFillMaterialHalo();
  deriveModuli();
}

void StaggeredGrid::clampFillMaterialHalo() {
  auto clampFill = [&](Array3f& f) {
    const std::size_t ax = sx(), ay = sy(), az = sz();
    auto clampIdx = [](std::size_t v, std::size_t n) {
      const std::size_t lo = kHalo, hi = kHalo + n - 1;
      return v < lo ? lo : (v > hi ? hi : v);
    };
    for (std::size_t k = 0; k < az; ++k)
      for (std::size_t j = 0; j < ay; ++j)
        for (std::size_t i = 0; i < ax; ++i) {
          const std::size_t ci = clampIdx(i, dims_.nx);
          const std::size_t cj = clampIdx(j, dims_.ny);
          const std::size_t ck = clampIdx(k, dims_.nz);
          if (ci != i || cj != j || ck != k) f(i, j, k) = f(ci, cj, ck);
        }
  };
  clampFill(rho);
  clampFill(mu);
  clampFill(lam);
  if (attenuation_.enabled) {
    clampFill(qsInv);
    clampFill(qpInv);
  }
}

void StaggeredGrid::deriveModuli() {
  for (std::size_t n = 0; n < mu.size(); ++n) {
    mui.data()[n] = mu.data()[n] > 0.0f ? 1.0f / mu.data()[n] : 0.0f;
    lami.data()[n] = lam.data()[n] > 0.0f ? 1.0f / lam.data()[n] : 0.0f;
  }
}

double StaggeredGrid::maxVp() const {
  double vpMax = 0.0;
  for (std::size_t n = 0; n < rho.size(); ++n) {
    const double r = rho.data()[n];
    if (r <= 0.0) continue;
    const double vp2 = (lam.data()[n] + 2.0 * mu.data()[n]) / r;
    vpMax = std::max(vpMax, vp2);
  }
  return std::sqrt(vpMax);
}

double StaggeredGrid::stableDt() const {
  // 4th-order staggered CFL: dt <= h / (vp * sqrt(3) * (|c1| + |c2|)),
  // with |c1| + |c2| = 9/8 + 1/24 = 7/6; a 0.45/0.495 safety margin.
  const double vp = maxVp();
  AWP_CHECK_MSG(vp > 0.0, "material not set");
  return 0.45 * h_ / vp;
}

std::vector<std::byte> StaggeredGrid::saveState() const {
  std::vector<const Array3f*> fields = {&u,  &v,  &w,  &xx, &yy,
                                        &zz, &xy, &xz, &yz};
  if (attenuation_.enabled)
    for (const Array3f* f : {&rxx, &ryy, &rzz, &rxy, &rxz, &ryz})
      fields.push_back(f);
  std::size_t total = 0;
  for (const auto* f : fields) total += f->size() * sizeof(float);
  std::vector<std::byte> out(total);
  std::size_t at = 0;
  for (const auto* f : fields) {
    std::memcpy(out.data() + at, f->data(), f->size() * sizeof(float));
    at += f->size() * sizeof(float);
  }
  return out;
}

void StaggeredGrid::restoreState(std::span<const std::byte> state) {
  std::vector<Array3f*> fields = {&u, &v, &w, &xx, &yy, &zz, &xy, &xz, &yz};
  if (attenuation_.enabled)
    for (Array3f* f : {&rxx, &ryy, &rzz, &rxy, &rxz, &ryz}) fields.push_back(f);
  std::size_t total = 0;
  for (const auto* f : fields) total += f->size() * sizeof(float);
  AWP_CHECK_MSG(state.size() == total, "checkpoint state size mismatch");
  std::size_t at = 0;
  for (auto* f : fields) {
    std::memcpy(f->data(), state.data() + at, f->size() * sizeof(float));
    at += f->size() * sizeof(float);
  }
}

double StaggeredGrid::kineticEnergy() const {
  double e = 0.0;
  for (std::size_t k = kHalo; k < kHalo + dims_.nz; ++k)
    for (std::size_t j = kHalo; j < kHalo + dims_.ny; ++j)
      for (std::size_t i = kHalo; i < kHalo + dims_.nx; ++i) {
        const double vx = u(i, j, k), vy = v(i, j, k), vz = w(i, j, k);
        e += rho(i, j, k) * (vx * vx + vy * vy + vz * vz);
      }
  return 0.5 * e * h_ * h_ * h_;
}

}  // namespace awp::grid
