#pragma once
// Wavefield identifiers and their halo-exchange requirements.
//
// The reduced-communication optimization (§IV.A) rests on the observation
// that each stress component only feeds derivatives along specific axes:
// "for the stress tensor component xx ... we only need to update xx in the
// x direction rather than in all three directions. By sending two plane
// faces of xx information to the left neighbor and one plane to the right
// neighbor only in the x direction, we can reduce the xx message
// communication by 75%."
//
// The tables below encode, for every field and axis, how many halo planes
// a rank needs from its minus / plus neighbor. They are derived from the
// staggered-grid stencil in src/core/kernels.cpp (see the staggering
// convention documented there).

#include <array>
#include <cstddef>
#include <string_view>

namespace awp::grid {

enum class FieldId : std::size_t {
  U = 0,
  V,
  W,
  XX,
  YY,
  ZZ,
  XY,
  XZ,
  YZ,
  kCount
};

inline constexpr std::size_t kFieldCount =
    static_cast<std::size_t>(FieldId::kCount);

inline constexpr std::array<std::string_view, kFieldCount> kFieldNames = {
    "u", "v", "w", "xx", "yy", "zz", "xy", "xz", "yz"};

// Halo planes needed from the minus / plus neighbor along one axis.
struct AxisNeed {
  int minus = 0;
  int plus = 0;
  [[nodiscard]] int total() const { return minus + plus; }
};

struct FieldNeed {
  AxisNeed x, y, z;
  [[nodiscard]] const AxisNeed& axis(int a) const {
    return a == 0 ? x : (a == 1 ? y : z);
  }
};

// Full (unoptimized) exchange: two planes each way on every axis.
constexpr FieldNeed fullNeed() {
  return FieldNeed{{2, 2}, {2, 2}, {2, 2}};
}

// Reduced (v7.2) exchange, derived from the stencil in
// src/core/kernels.cpp (staggering: xx,yy,zz at centers; u at i-1/2; v at
// j+1/2; w at k+1/2; xy at (i-1/2, j+1/2); xz at (i-1/2, k+1/2); yz at
// (j+1/2, k+1/2)):
//   u : x(1,2) y(1,2) z(1,2)      xx: x(2,1) only
//   v : x(2,1) y(2,1) z(1,2)      yy: y(1,2) only
//   w : x(2,1) y(1,2) z(2,1)      zz: z(1,2) only
//   xy: x(1,2) y(2,1)             xz: x(1,2) z(2,1)     yz: y(2,1) z(2,1)
constexpr FieldNeed reducedNeed(FieldId f) {
  switch (f) {
    case FieldId::U:
      return FieldNeed{{1, 2}, {1, 2}, {1, 2}};
    case FieldId::V:
      return FieldNeed{{2, 1}, {2, 1}, {1, 2}};
    case FieldId::W:
      return FieldNeed{{2, 1}, {1, 2}, {2, 1}};
    case FieldId::XX:
      return FieldNeed{{2, 1}, {0, 0}, {0, 0}};
    case FieldId::YY:
      return FieldNeed{{0, 0}, {1, 2}, {0, 0}};
    case FieldId::ZZ:
      return FieldNeed{{0, 0}, {0, 0}, {1, 2}};
    case FieldId::XY:
      return FieldNeed{{1, 2}, {2, 1}, {0, 0}};
    case FieldId::XZ:
      return FieldNeed{{1, 2}, {0, 0}, {2, 1}};
    case FieldId::YZ:
      return FieldNeed{{0, 0}, {2, 1}, {2, 1}};
    case FieldId::kCount:
      break;
  }
  return FieldNeed{};
}

inline constexpr std::array<FieldId, 3> kVelocityFields = {
    FieldId::U, FieldId::V, FieldId::W};
inline constexpr std::array<FieldId, 6> kStressFields = {
    FieldId::XX, FieldId::YY, FieldId::ZZ,
    FieldId::XY, FieldId::XZ, FieldId::YZ};

}  // namespace awp::grid
