#pragma once
// Ghost-cell exchange between neighboring subgrids (§III.A: "Ghost cells,
// which occupy a two-cell padding layer, manage the most recently updated
// wavefield parameters exchanged from the edge of the neighboring
// subgrids").
//
// Two communication models are implemented, matching §IV.A:
//  * Synchronous: axis-by-axis blocking send/recv pairs with a global
//    barrier after every axis — the original cascading model whose accrued
//    latency grows with the communication path.
//  * Asynchronous: all transfers posted as isend/irecv with unique tags
//    ("allows out-of-order arrival and the unique tags maintain data
//    integrity"), completed with a single waitAll.
//
// Orthogonal to the mode, `reduced` selects the v7.2 algorithm-level
// reduced communication tables (see field_id.hpp) instead of the full
// 2-planes-each-way exchange.

#include <cstdint>
#include <vector>

#include "grid/field_id.hpp"
#include "grid/staggered_grid.hpp"
#include "vcluster/cart.hpp"
#include "vcluster/comm.hpp"

namespace awp::grid {

struct ExchangeStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t planes = 0;
};

class HaloExchanger {
 public:
  enum class Mode { Synchronous, Asynchronous };

  HaloExchanger(vcluster::Communicator& comm,
                const vcluster::CartTopology& topo, Mode mode, bool reduced);

  // Exchange the three velocity components (collective).
  void exchangeVelocities(StaggeredGrid& g);
  // Exchange the six stress components (collective).
  void exchangeStresses(StaggeredGrid& g);
  // One-time full exchange of the material arrays after loading.
  void exchangeMaterial(StaggeredGrid& g);
  // Exchange an arbitrary field subset (used by the overlapped
  // per-component interleaving of §IV.C).
  void exchangeFields(StaggeredGrid& g, const std::vector<FieldId>& fields) {
    runExchange(g, fields, /*forceFull=*/false);
  }

  [[nodiscard]] const ExchangeStats& stats() const { return stats_; }
  void resetStats() { stats_ = ExchangeStats{}; }

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] bool reduced() const { return reduced_; }

 private:
  struct Transfer {
    Array3f* field = nullptr;
    int fieldSlot = 0;  // unique per field within one exchange call
    int axis = 0;
    int dir = 0;  // -1 or +1: which neighbor
  };

  void runExchange(StaggeredGrid& g, const std::vector<FieldId>& fields,
                   bool forceFull);
  void runExchangeRaw(std::vector<Array3f*> fields,
                      const std::vector<FieldNeed>& needs);

  void sendOne(Array3f& f, const AxisNeed& need, int axis, int dir, int tag);
  void recvOne(Array3f& f, const AxisNeed& need, int axis, int dir, int tag);
  int tagFor(int fieldSlot, int axis, int dir) const;

  vcluster::Communicator& comm_;
  const vcluster::CartTopology& topo_;
  Mode mode_;
  bool reduced_;
  int seq_ = 0;
  ExchangeStats stats_;
  // Persistent pack/unpack staging: grown to the largest plane on first
  // use, then reused — the per-message path never allocates again.
  std::vector<float> sendScratch_;
  std::vector<float> recvScratch_;
};

}  // namespace awp::grid
