#include "grid/halo.hpp"

#include <span>

#include "telemetry/registry.hpp"
#include "util/error.hpp"
#include "util/hot.hpp"

namespace awp::grid {

namespace {

struct Interior {
  std::size_t nx, ny, nz;
};

Interior interiorOf(const Array3f& f) {
  return Interior{f.nx() - 2 * kHalo, f.ny() - 2 * kHalo,
                  f.nz() - 2 * kHalo};
}

// Number of floats in `count` exchange planes along `axis`.
std::size_t planeFloats(const Interior& in, int axis, int count) {
  switch (axis) {
    case 0:
      return static_cast<std::size_t>(count) * in.ny * in.nz;
    case 1:
      return static_cast<std::size_t>(count) * in.nx * in.nz;
    default:
      return static_cast<std::size_t>(count) * in.nx * in.ny;
  }
}

// Pack `count` planes starting at raw index `start` along `axis` into buf,
// which the caller must have sized to planeFloats() already (the exchanger
// stages through persistent scratch, so this path never allocates).
// Only the interior cross-section of the other two axes is packed: the
// stencils never read halo corners or edges (all derivatives are
// axis-aligned), so faces are sufficient.
AWP_HOT void pack(const Array3f& f, int axis, std::size_t start, int count,
                  std::span<float> buf) {
  const Interior in = interiorOf(f);
  // awplint: hot-ok(size assert runs once per message, outside the copy loops; fires only on a caller bug)
  AWP_CHECK(buf.size() == planeFloats(in, axis, count));
  std::size_t at = 0;
  if (axis == 0) {
    for (std::size_t k = kHalo; k < kHalo + in.nz; ++k)
      for (std::size_t j = kHalo; j < kHalo + in.ny; ++j)
        for (int p = 0; p < count; ++p)
          buf[at++] = f(start + static_cast<std::size_t>(p), j, k);
  } else if (axis == 1) {
    for (std::size_t k = kHalo; k < kHalo + in.nz; ++k)
      for (int p = 0; p < count; ++p)
        for (std::size_t i = kHalo; i < kHalo + in.nx; ++i)
          buf[at++] = f(i, start + static_cast<std::size_t>(p), k);
  } else {
    for (int p = 0; p < count; ++p)
      for (std::size_t j = kHalo; j < kHalo + in.ny; ++j)
        for (std::size_t i = kHalo; i < kHalo + in.nx; ++i)
          buf[at++] = f(i, j, start + static_cast<std::size_t>(p));
  }
}

AWP_HOT void unpack(Array3f& f, int axis, std::size_t start, int count,
                    std::span<const float> buf) {
  const Interior in = interiorOf(f);
  // awplint: hot-ok(size assert runs once per message, outside the copy loops; fires only on a caller bug)
  AWP_CHECK(buf.size() == planeFloats(in, axis, count));
  std::size_t at = 0;
  if (axis == 0) {
    for (std::size_t k = kHalo; k < kHalo + in.nz; ++k)
      for (std::size_t j = kHalo; j < kHalo + in.ny; ++j)
        for (int p = 0; p < count; ++p)
          f(start + static_cast<std::size_t>(p), j, k) = buf[at++];
  } else if (axis == 1) {
    for (std::size_t k = kHalo; k < kHalo + in.nz; ++k)
      for (int p = 0; p < count; ++p)
        for (std::size_t i = kHalo; i < kHalo + in.nx; ++i)
          f(i, start + static_cast<std::size_t>(p), k) = buf[at++];
  } else {
    for (int p = 0; p < count; ++p)
      for (std::size_t j = kHalo; j < kHalo + in.ny; ++j)
        for (std::size_t i = kHalo; i < kHalo + in.nx; ++i)
          f(i, j, start + static_cast<std::size_t>(p)) = buf[at++];
  }
}

std::size_t interiorExtent(const Interior& in, int axis) {
  return axis == 0 ? in.nx : (axis == 1 ? in.ny : in.nz);
}

}  // namespace

HaloExchanger::HaloExchanger(vcluster::Communicator& comm,
                             const vcluster::CartTopology& topo, Mode mode,
                             bool reduced)
    : comm_(comm), topo_(topo), mode_(mode), reduced_(reduced) {
  AWP_CHECK(comm.size() == topo.size());
}

int HaloExchanger::tagFor(int fieldSlot, int axis, int dir) const {
  // Unique per (exchange call, field, axis, direction): the asynchronous
  // model's "unique tagging to avoid source/destination ambiguity".
  return (seq_ & 0xFFFF) * 128 + fieldSlot * 8 + axis * 2 + (dir > 0 ? 1 : 0);
}

void HaloExchanger::sendOne(Array3f& f, const AxisNeed& need, int axis,
                            int dir, int tag) {
  const int neighbor = topo_.neighbor(comm_.rank(), axis, dir);
  if (neighbor < 0) return;
  // To the minus neighbor we send the planes it needs on its plus side
  // (need.plus of our bottom interior); symmetrically for plus.
  const int count = dir < 0 ? need.plus : need.minus;
  if (count == 0) return;
  const Interior in = interiorOf(f);
  const std::size_t start =
      dir < 0 ? kHalo
              : kHalo + interiorExtent(in, axis) -
                    static_cast<std::size_t>(count);
  sendScratch_.resize(planeFloats(in, axis, count));
  const std::span<float> buf(sendScratch_);
  {
    telemetry::ScopedSpan span(telemetry::Phase::HaloPack);
    pack(f, axis, start, count, buf);
  }
  comm_.sendSpan<float>(neighbor, tag, buf);
  ++stats_.messages;
  stats_.bytes += buf.size() * sizeof(float);
  stats_.planes += static_cast<std::uint64_t>(count);
  telemetry::count(telemetry::Counter::HaloMessages);
  telemetry::count(telemetry::Counter::HaloBytesSent,
                   buf.size() * sizeof(float));
}

void HaloExchanger::recvOne(Array3f& f, const AxisNeed& need, int axis,
                            int dir, int tag) {
  const int neighbor = topo_.neighbor(comm_.rank(), axis, dir);
  if (neighbor < 0) return;
  const int count = dir < 0 ? need.minus : need.plus;
  if (count == 0) return;
  const Interior in = interiorOf(f);
  const std::size_t start =
      dir < 0 ? kHalo - static_cast<std::size_t>(count)
              : kHalo + interiorExtent(in, axis);
  recvScratch_.resize(planeFloats(in, axis, count));
  const std::span<float> buf(recvScratch_);
  comm_.recvSpan<float>(neighbor, tag, buf);
  telemetry::count(telemetry::Counter::HaloBytesReceived,
                   buf.size() * sizeof(float));
  {
    telemetry::ScopedSpan span(telemetry::Phase::HaloUnpack);
    unpack(f, axis, start, count, buf);
  }
}

void HaloExchanger::runExchangeRaw(std::vector<Array3f*> fields,
                                   const std::vector<FieldNeed>& needs) {
  AWP_CHECK(fields.size() == needs.size());
  // Pack/unpack open nested spans, so this span's exclusive time is the
  // messaging itself: posting sends and blocking in receives.
  telemetry::ScopedSpan span(telemetry::Phase::HaloExchange);
  ++seq_;

  if (mode_ == Mode::Asynchronous) {
    // Post everything, then complete everything: out-of-order arrival is
    // handled by the unique tags.
    for (std::size_t s = 0; s < fields.size(); ++s)
      for (int axis = 0; axis < 3; ++axis)
        for (int dir : {-1, 1})
          sendOne(*fields[s], needs[s].axis(axis), axis, dir,
                  tagFor(static_cast<int>(s), axis, dir));
    for (std::size_t s = 0; s < fields.size(); ++s)
      for (int axis = 0; axis < 3; ++axis)
        for (int dir : {-1, 1}) {
          // Note the mirrored tag: a message sent toward dir arrives at a
          // rank receiving from -dir.
          recvOne(*fields[s], needs[s].axis(axis), axis, dir,
                  tagFor(static_cast<int>(s), axis, -dir));
        }
  } else {
    // Synchronous cascade: one axis at a time, a global barrier between
    // axes (the "redundant synchronization" the async redesign removed).
    for (int axis = 0; axis < 3; ++axis) {
      for (std::size_t s = 0; s < fields.size(); ++s)
        for (int dir : {-1, 1})
          sendOne(*fields[s], needs[s].axis(axis), axis, dir,
                  tagFor(static_cast<int>(s), axis, dir));
      for (std::size_t s = 0; s < fields.size(); ++s)
        for (int dir : {-1, 1})
          recvOne(*fields[s], needs[s].axis(axis), axis, dir,
                  tagFor(static_cast<int>(s), axis, -dir));
      comm_.barrier();
    }
  }
}

void HaloExchanger::runExchange(StaggeredGrid& g,
                                const std::vector<FieldId>& fields,
                                bool forceFull) {
  std::vector<Array3f*> arrays;
  std::vector<FieldNeed> needs;
  arrays.reserve(fields.size());
  needs.reserve(fields.size());
  for (FieldId f : fields) {
    arrays.push_back(&g.field(f));
    needs.push_back((reduced_ && !forceFull) ? reducedNeed(f) : fullNeed());
  }
  runExchangeRaw(std::move(arrays), needs);
}

void HaloExchanger::exchangeVelocities(StaggeredGrid& g) {
  runExchange(
      g, {FieldId::U, FieldId::V, FieldId::W}, /*forceFull=*/false);
}

void HaloExchanger::exchangeStresses(StaggeredGrid& g) {
  runExchange(g,
              {FieldId::XX, FieldId::YY, FieldId::ZZ, FieldId::XY,
               FieldId::XZ, FieldId::YZ},
              /*forceFull=*/false);
}

void HaloExchanger::exchangeMaterial(StaggeredGrid& g) {
  std::vector<Array3f*> arrays = {&g.rho, &g.lam, &g.mu, &g.lami, &g.mui};
  if (g.attenuation().enabled) {
    arrays.push_back(&g.qsInv);
    arrays.push_back(&g.qpInv);
  }
  std::vector<FieldNeed> needs(arrays.size(), fullNeed());
  runExchangeRaw(std::move(arrays), needs);
}

}  // namespace awp::grid
