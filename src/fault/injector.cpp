#include "fault/injector.hpp"

namespace awp::fault {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hashSite(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

thread_local int t_rank = -1;

}  // namespace

const char* toString(FaultKind kind) {
  switch (kind) {
    case FaultKind::TransientIoError: return "TransientIoError";
    case FaultKind::ShortWrite: return "ShortWrite";
    case FaultKind::NoSpace: return "NoSpace";
    case FaultKind::BitFlip: return "BitFlip";
    case FaultKind::MessageDrop: return "MessageDrop";
    case FaultKind::MessageDuplicate: return "MessageDuplicate";
    case FaultKind::RankStall: return "RankStall";
    case FaultKind::FieldPoison: return "FieldPoison";
    case FaultKind::RankDeath: return "RankDeath";
  }
  return "?";
}

FaultPlan& FaultPlan::add(FaultSpec spec) {
  specs_.push_back(std::move(spec));
  return *this;
}

FaultPlan& FaultPlan::transientIoError(std::string site, int rank,
                                       std::uint64_t occurrence,
                                       std::uint64_t count) {
  return add({std::move(site), FaultKind::TransientIoError, rank, occurrence,
              count, 0.0});
}

FaultPlan& FaultPlan::bitFlip(std::string site, int rank,
                              std::uint64_t occurrence) {
  return add(
      {std::move(site), FaultKind::BitFlip, rank, occurrence, 1, 0.0});
}

FaultPlan& FaultPlan::stall(std::string site, int rank,
                            std::uint64_t occurrence, double seconds) {
  return add(
      {std::move(site), FaultKind::RankStall, rank, occurrence, 1, seconds});
}

FaultPlan& FaultPlan::poison(std::string site, int rank,
                             std::uint64_t occurrence) {
  return add(
      {std::move(site), FaultKind::FieldPoison, rank, occurrence, 1, 0.0});
}

FaultPlan& FaultPlan::rankDeath(int rank, std::uint64_t occurrence,
                                std::uint64_t count) {
  return add({"rank_death", FaultKind::RankDeath, rank, occurrence, count,
              0.0});
}

FaultPlan& FaultPlan::buddyDrop(int rank, std::uint64_t occurrence,
                                std::uint64_t count) {
  return add({"buddy_drop", FaultKind::MessageDrop, rank, occurrence, count,
              0.0});
}

FaultPlan& FaultPlan::brokerDeath(int broker, std::uint64_t occurrence) {
  return add({"broker_death", FaultKind::RankDeath, broker, occurrence, 1,
              0.0});
}

FaultPlan& FaultPlan::fabricDrop(int broker, std::uint64_t occurrence,
                                 std::uint64_t count) {
  return add({"fabric_drop", FaultKind::MessageDrop, broker, occurrence,
              count, 0.0});
}

FaultPlan& FaultPlan::fabricDuplicate(int broker, std::uint64_t occurrence) {
  return add({"fabric_drop", FaultKind::MessageDuplicate, broker, occurrence,
              1, 0.0});
}

FaultPlan& FaultPlan::fabricDelay(int broker, std::uint64_t occurrence,
                                  double seconds, std::uint64_t count) {
  return add({"fabric_delay", FaultKind::RankStall, broker, occurrence,
              count, seconds});
}

FaultPlan& FaultPlan::servePublishDrop(int origin, std::uint64_t occurrence,
                                       std::uint64_t count) {
  return add({"serve_publish_drop", FaultKind::MessageDrop, origin,
              occurrence, count, 0.0});
}

FaultPlan& FaultPlan::serveNotifyDelay(int origin, std::uint64_t occurrence,
                                       double seconds, std::uint64_t count) {
  return add({"serve_notify_delay", FaultKind::RankStall, origin, occurrence,
              count, seconds});
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : specs_(plan.specs()), seed_(seed) {}

std::optional<FaultAction> FaultInjector::check(std::string_view site,
                                                int rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto key = std::make_pair(std::string(site), rank);
  const std::uint64_t op = ++opCounts_[key];
  auto& siteStats = stats_[key.first];
  ++siteStats.operations;

  for (const auto& spec : specs_) {
    if (spec.site != site) continue;
    if (spec.rank != -1 && spec.rank != rank) continue;
    if (op < spec.occurrence || op >= spec.occurrence + spec.count) continue;
    FaultAction action;
    action.kind = spec.kind;
    action.stallSeconds = spec.stallSeconds;
    // Deterministic bit choice: a pure function of the plan seed and the
    // (site, rank, occurrence) coordinates, independent of thread timing.
    action.flipBit = mix64(seed_ ^ hashSite(site) ^
                           (static_cast<std::uint64_t>(rank + 1) << 32) ^ op);
    ++siteStats.injected;
    injected_.fetch_add(1, std::memory_order_relaxed);
    return action;
  }
  return std::nullopt;
}

std::map<std::string, SiteStats> FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

namespace detail {
std::atomic<FaultInjector*> g_injector{nullptr};
}

void installInjector(FaultInjector* injector) {
  detail::g_injector.store(injector, std::memory_order_release);
}

void setThreadRank(int rank) { t_rank = rank; }
int threadRank() { return t_rank; }

}  // namespace awp::fault
