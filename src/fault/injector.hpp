#pragma once
// Deterministic, seeded fault injection. At 223k cores component failure
// is the expected case (§III.F), so the paper's workflow verifies every
// data product (§III.H) and recovers failed transfers automatically
// (§III.I). This subsystem lets tests *prove* those recovery paths work:
// a FaultPlan schedules faults by site name, rank and occurrence count,
// and hooks in io::SharedFile, io::CheckpointStore, vcluster::Communicator
// / Mailbox and workflow::TransferChannel consult the installed injector.
//
// Hook sites (exact-match strings):
//   sharedfile.read / sharedfile.write — positional I/O ops
//   ckpt.payload                       — checkpoint payload as written
//   comm.send                          — point-to-point message injection
//   mailbox.pop                        — receive-side stall
//   transfer.chunk                     — wide-area chunk transfer
//   solver.step                        — top of each WaveSolver step
//                                        (RankStall wedges a rank;
//                                        FieldPoison NaNs one cell)
//   rank_death                         — top of each WaveSolver step,
//                                        consulted once per step per rank
//                                        (RankDeath kills the rank thread
//                                        so respawn ladders can be tested
//                                        at a chosen step)
//   buddy_drop                         — buddy-checkpoint replica receipt;
//                                        rank attribution is the replica
//                                        OWNER (MessageDrop loses the
//                                        in-memory replica, forcing the
//                                        disk fallback on restore)
//   broker_death                       — top of each hazard-fabric broker
//                                        pump tick; rank = broker id
//                                        (RankDeath fail-stops the broker:
//                                        its service aborts, its lease
//                                        lapses, its hash range moves)
//   fabric_drop                        — hazard-fabric transport send and
//                                        lease-RPC path; rank = SENDING
//                                        broker id (MessageDrop = sender-
//                                        visible loss driving util/retry
//                                        backoff; MessageDuplicate =
//                                        delivered twice, exercising
//                                        digest dedup; sustained drops
//                                        partition the broker)
//   fabric_delay                       — hazard-fabric transport send;
//                                        rank = sending broker id
//                                        (RankStall sleeps the sender,
//                                        modelling a congested link)
//   serve_publish_drop                 — serving-tier window publish;
//                                        rank = publish origin (broker id,
//                                        or ServeConfig::originId outside a
//                                        fabric). MessageDrop loses one
//                                        window's tile publish — the next
//                                        window or a reconcile pass must
//                                        converge subscribers anyway
//   serve_notify_delay                 — serving-tier subscription delta
//                                        delivery; rank = publish origin
//                                        (RankStall delays the notify,
//                                        modelling a slow subscriber link)
//   cycle.step                         — top of each earthquake-cycle
//                                        quasi-dynamic step; rank = the
//                                        solver's configured rank id
//                                        (FieldPoison scales one node's
//                                        state variable by a large finite
//                                        factor — the adaptive stepper
//                                        must absorb it; RankStall wedges
//                                        the stepping loop so the
//                                        heartbeat watchdog can catch it)
//
// When no injector is installed every hook is a single relaxed atomic
// load + branch, so the disabled path adds no measurable overhead to the
// solver bench path.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/guarded.hpp"

namespace awp::fault {

enum class FaultKind {
  TransientIoError,   // throw awp::TransientError (retryable)
  ShortWrite,         // write only a prefix, then throw TransientError
  NoSpace,            // throw awp::Error (permanent, ENOSPC-style)
  BitFlip,            // flip one deterministic bit in the payload
  MessageDrop,        // comm: the message silently vanishes
  MessageDuplicate,   // comm: the message is delivered twice
  RankStall,          // sleep stallSeconds at the site
  FieldPoison,        // solver: write NaN into one deterministic cell
  RankDeath,          // kill the rank thread (throws RankDeathError)
};

const char* toString(FaultKind kind);

struct FaultSpec {
  std::string site;               // exact hook-site name
  FaultKind kind = FaultKind::TransientIoError;
  int rank = -1;                  // -1 = any rank
  std::uint64_t occurrence = 1;   // 1-based op index at (site, rank) that
                                  // first triggers the fault
  std::uint64_t count = 1;        // consecutive ops affected from there
  double stallSeconds = 0.0;      // RankStall only
};

// Builder for a set of scheduled faults.
class FaultPlan {
 public:
  FaultPlan& add(FaultSpec spec);

  // Convenience builders for the common cases.
  FaultPlan& transientIoError(std::string site, int rank,
                              std::uint64_t occurrence,
                              std::uint64_t count = 1);
  FaultPlan& bitFlip(std::string site, int rank, std::uint64_t occurrence);
  FaultPlan& stall(std::string site, int rank, std::uint64_t occurrence,
                   double seconds);
  FaultPlan& poison(std::string site, int rank, std::uint64_t occurrence);
  // Kill rank `rank` at the given 1-based "rank_death" consult (one consult
  // per solver step, so occurrence == step index within the attempt).
  // count > 1 also kills the first count-1 respawned incarnations, which is
  // how tests drive a respawn budget to exhaustion deterministically.
  FaultPlan& rankDeath(int rank, std::uint64_t occurrence,
                       std::uint64_t count = 1);
  // Lose rank `rank`'s in-memory buddy replica at the given replication.
  FaultPlan& buddyDrop(int rank, std::uint64_t occurrence,
                       std::uint64_t count = 1);
  // Fail-stop fabric broker `broker` at its occurrence-th pump tick.
  FaultPlan& brokerDeath(int broker, std::uint64_t occurrence);
  // Drop `count` consecutive fabric sends/lease renewals FROM `broker`
  // starting at the occurrence-th "fabric_drop" consult. A long run
  // partitions the broker from the membership view.
  FaultPlan& fabricDrop(int broker, std::uint64_t occurrence,
                        std::uint64_t count = 1);
  // Deliver one fabric message from `broker` twice (dedup must absorb it).
  FaultPlan& fabricDuplicate(int broker, std::uint64_t occurrence);
  // Stall fabric sends from `broker` for `seconds` each.
  FaultPlan& fabricDelay(int broker, std::uint64_t occurrence,
                         double seconds, std::uint64_t count = 1);
  // Drop `count` consecutive serving-tier window publishes from publish
  // origin `origin` starting at the occurrence-th "serve_publish_drop"
  // consult. Dropped windows must be covered by later cumulative windows
  // or a reconcile pass.
  FaultPlan& servePublishDrop(int origin, std::uint64_t occurrence,
                              std::uint64_t count = 1);
  // Stall subscription delta delivery from `origin` for `seconds` each.
  FaultPlan& serveNotifyDelay(int origin, std::uint64_t occurrence,
                              double seconds, std::uint64_t count = 1);

  [[nodiscard]] const std::vector<FaultSpec>& specs() const { return specs_; }
  [[nodiscard]] bool empty() const { return specs_.empty(); }

 private:
  std::vector<FaultSpec> specs_;
};

// What a hook should do for the current operation.
struct FaultAction {
  FaultKind kind = FaultKind::TransientIoError;
  double stallSeconds = 0.0;
  std::uint64_t flipBit = 0;  // BitFlip: bit index (mod payload bits)
};

struct SiteStats {
  std::uint64_t operations = 0;
  std::uint64_t injected = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan, std::uint64_t seed = 0xfa017ULL);

  // Consult the plan at a hook site. Counts one operation against the
  // (site, rank) stream — per-rank streams keep concurrent ranks
  // deterministic — and returns the scheduled action, if any.
  std::optional<FaultAction> check(std::string_view site, int rank);

  [[nodiscard]] std::uint64_t faultsInjected() const {
    return injected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::map<std::string, SiteStats> stats() const;

 private:
  std::vector<FaultSpec> specs_;
  std::uint64_t seed_;
  std::atomic<std::uint64_t> injected_{0};
  mutable std::mutex mutex_;
  std::map<std::pair<std::string, int>, std::uint64_t> opCounts_
      AWP_GUARDED_BY(mutex_);
  std::map<std::string, SiteStats> stats_ AWP_GUARDED_BY(mutex_);
};

// ---- declared hook-site registry ----------------------------------------
// The single source of truth for which site names exist. awplint's
// --registry gate cross-checks it three ways: every literal check("...")
// consult in src/ must name a declared site, every declared site string
// must appear at a consult site somewhere in src/, and every site must be
// exercised by at least one test — matched by the site string itself or by
// the dedicated FaultPlan builder named here ("" = no dedicated builder;
// tests reach the site through the generic spec builders).
struct KnownFaultSite {
  const char* site;
  const char* builder;
};
inline constexpr KnownFaultSite kKnownSites[] = {
    {"sharedfile.read", ""},
    {"sharedfile.write", ""},
    {"ckpt.payload", ""},
    {"comm.send", ""},
    {"mailbox.pop", ""},
    {"transfer.chunk", ""},
    {"solver.step", ""},
    {"rank_death", "rankDeath"},
    {"buddy_drop", "buddyDrop"},
    {"broker_death", "brokerDeath"},
    {"fabric_drop", "fabricDrop"},
    {"fabric_delay", "fabricDelay"},
    {"serve_publish_drop", "servePublishDrop"},
    {"serve_notify_delay", "serveNotifyDelay"},
    // Worker-crash injection at the top of each scheduled job step
    // (sched/service.cpp's step callback). Consulted long before this
    // registry existed; declared here when the registry gate found the
    // drift.
    {"sched.job.step", ""},
    // Earthquake-cycle stepping loop (cycle/solver.cpp): deterministic
    // state perturbation + stall, reached through the generic builders.
    {"cycle.step", ""},
};

namespace detail {
extern std::atomic<FaultInjector*> g_injector;
}

// The process-global injector consulted by all hooks (nullptr = disabled).
inline FaultInjector* activeInjector() {
  return detail::g_injector.load(std::memory_order_acquire);
}
inline bool injectionEnabled() { return activeInjector() != nullptr; }
void installInjector(FaultInjector* injector);

// RAII install/uninstall for tests.
class ScopedInjection {
 public:
  explicit ScopedInjection(FaultInjector& injector) {
    installInjector(&injector);
  }
  ~ScopedInjection() { installInjector(nullptr); }
  ScopedInjection(const ScopedInjection&) = delete;
  ScopedInjection& operator=(const ScopedInjection&) = delete;
};

// Rank attribution for hooks that sit below the Communicator (SharedFile,
// Mailbox): the cluster launcher tags each rank thread; -1 outside one.
void setThreadRank(int rank);
int threadRank();

}  // namespace awp::fault
