#include "telemetry/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "telemetry/json.hpp"
#include "util/error.hpp"

namespace awp::telemetry {

namespace {

constexpr double kNsPerSecond = 1e9;

std::string fmtDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void writeTextAtomically(const std::string& path, const std::string& text) {
  namespace fs = std::filesystem;
  const fs::path target(path);
  if (target.has_parent_path()) fs::create_directories(target.parent_path());
  const fs::path tmp = target.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("telemetry: cannot open " + tmp.string());
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.flush();
    if (!out) throw Error("telemetry: short write to " + tmp.string());
  }
  fs::rename(tmp, target);
}

}  // namespace

ClusterReport aggregate(vcluster::Communicator& comm, const Session& session,
                        std::uint64_t step, double wallSeconds) {
  const RankSummary mine = session.slot(comm.rank()).summary();
  const auto payloads = comm.gatherBytes(
      0, std::span<const std::byte>(
             reinterpret_cast<const std::byte*>(&mine), sizeof(mine)));

  ClusterReport report;
  if (comm.rank() != 0) return report;  // !valid(): root-only result

  std::vector<RankSummary> summaries;
  summaries.reserve(payloads.size());
  for (const auto& bytes : payloads) {
    AWP_CHECK(bytes.size() == sizeof(RankSummary));
    RankSummary s;
    std::memcpy(&s, bytes.data(), sizeof(s));
    summaries.push_back(s);
  }
  const int nranks = static_cast<int>(summaries.size());
  AWP_CHECK(nranks > 0);

  report.nranks = nranks;
  report.step = step;
  report.wallSeconds = wallSeconds;

  report.phases.resize(kPhaseCount);
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    PhaseStat& stat = report.phases[p];
    stat.phase = static_cast<Phase>(p);
    double sum = 0.0, replay = 0.0;
    double minV = 0.0, maxV = 0.0;
    int minRank = 0, maxRank = 0;
    for (int r = 0; r < nranks; ++r) {
      const double sec =
          static_cast<double>(summaries[r].phaseNs[p]) / kNsPerSecond;
      replay += static_cast<double>(summaries[r].replayNs[p]) / kNsPerSecond;
      sum += sec;
      if (r == 0 || sec < minV) { minV = sec; minRank = r; }
      if (r == 0 || sec > maxV) { maxV = sec; maxRank = r; }
    }
    (void)minRank;
    stat.sumSeconds = sum;
    stat.minSeconds = minV;
    stat.maxSeconds = maxV;
    stat.meanSeconds = sum / nranks;
    stat.imbalance = stat.meanSeconds > 0.0 ? maxV / stat.meanSeconds : 1.0;
    stat.maxRank = maxRank;
    stat.replaySeconds = replay;
    report.usefulSeconds += stat.meanSeconds;
    report.replaySeconds += replay / nranks;
  }
  report.coverage =
      wallSeconds > 0.0
          ? (report.usefulSeconds + report.replaySeconds) / wallSeconds
          : 0.0;

  // Off-rank work (launcher-thread transfer legs) has no rank to attribute
  // times to, but its counters are real work: fold them into the totals.
  const RankSummary offRank = session.offRankSlot().summary();

  report.counters.resize(kCounterCount);
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    CounterStat& stat = report.counters[c];
    stat.counter = static_cast<Counter>(c);
    for (int r = 0; r < nranks; ++r) {
      const std::uint64_t v = summaries[r].counters[c];
      stat.total += v;
      if (r == 0 || v < stat.min) stat.min = v;
      if (r == 0 || v > stat.max) { stat.max = v; stat.maxRank = r; }
    }
    stat.total += offRank.counters[c];
  }

  for (int r = 0; r < nranks; ++r) {
    report.spansRecorded += summaries[r].spansRecorded;
    report.spansDropped += summaries[r].spansDropped;
  }
  report.spansRecorded += offRank.spansRecorded;
  report.spansDropped += offRank.spansDropped;
  return report;
}

std::string toJson(const ClusterReport& report) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"awp-telemetry-report\",\n";
  os << "  \"version\": 1,\n";
  os << "  \"nranks\": " << report.nranks << ",\n";
  os << "  \"step\": " << report.step << ",\n";
  os << "  \"wall_seconds\": " << fmtDouble(report.wallSeconds) << ",\n";
  os << "  \"useful_seconds\": " << fmtDouble(report.usefulSeconds) << ",\n";
  os << "  \"replay_seconds\": " << fmtDouble(report.replaySeconds) << ",\n";
  os << "  \"coverage\": " << fmtDouble(report.coverage) << ",\n";
  os << "  \"spans_recorded\": " << report.spansRecorded << ",\n";
  os << "  \"spans_dropped\": " << report.spansDropped << ",\n";
  os << "  \"phases\": {\n";
  for (std::size_t p = 0; p < report.phases.size(); ++p) {
    const PhaseStat& s = report.phases[p];
    os << "    \"" << toString(s.phase) << "\": {"
       << "\"sum_seconds\": " << fmtDouble(s.sumSeconds) << ", "
       << "\"min_seconds\": " << fmtDouble(s.minSeconds) << ", "
       << "\"max_seconds\": " << fmtDouble(s.maxSeconds) << ", "
       << "\"mean_seconds\": " << fmtDouble(s.meanSeconds) << ", "
       << "\"imbalance\": " << fmtDouble(s.imbalance) << ", "
       << "\"max_rank\": " << s.maxRank << ", "
       << "\"replay_seconds\": " << fmtDouble(s.replaySeconds) << "}"
       << (p + 1 < report.phases.size() ? "," : "") << "\n";
  }
  os << "  },\n";
  os << "  \"counters\": {\n";
  for (std::size_t c = 0; c < report.counters.size(); ++c) {
    const CounterStat& s = report.counters[c];
    os << "    \"" << toString(s.counter) << "\": {"
       << "\"total\": " << s.total << ", "
       << "\"min\": " << s.min << ", "
       << "\"max\": " << s.max << ", "
       << "\"max_rank\": " << s.maxRank << "}"
       << (c + 1 < report.counters.size() ? "," : "") << "\n";
  }
  os << "  }\n";
  os << "}\n";
  return os.str();
}

void writeReportFile(const std::string& path, const ClusterReport& report) {
  AWP_CHECK_MSG(report.valid(), "telemetry: writeReportFile on empty report");
  writeTextAtomically(path, toJson(report));
}

void writeTraceFile(const std::string& path, const RankTelemetry& rankTel) {
  std::ostringstream os;
  for (const SpanRecord& rec : rankTel.traceSnapshot()) {
    os << "{\"rank\": " << rankTel.rank()
       << ", \"phase\": \"" << toString(rec.phase) << "\""
       << ", \"step\": " << rec.step
       << ", \"start_ns\": " << rec.startNs
       << ", \"duration_ns\": " << rec.durationNs
       << ", \"depth\": " << rec.depth
       << ", \"replay\": " << (rec.replay ? "true" : "false") << "}\n";
  }
  writeTextAtomically(path, os.str());
}

namespace {

// Fetch a finite number member, recording a violation when absent/invalid.
bool numberMember(const JsonValue& obj, const std::string& context,
                  const std::string& key, std::vector<std::string>& out,
                  double* value) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->isNumber()) {
    out.push_back(context + ": missing numeric field '" + key + "'");
    return false;
  }
  if (!std::isfinite(v->number)) {
    out.push_back(context + ": field '" + key + "' is not finite");
    return false;
  }
  *value = v->number;
  return true;
}

bool nonNegativeMember(const JsonValue& obj, const std::string& context,
                       const std::string& key, std::vector<std::string>& out,
                       double* value) {
  if (!numberMember(obj, context, key, out, value)) return false;
  if (*value < 0.0) {
    out.push_back(context + ": field '" + key + "' is negative");
    return false;
  }
  return true;
}

}  // namespace

std::vector<std::string> validateReportJson(const std::string& text) {
  std::vector<std::string> out;
  JsonValue root;
  try {
    root = parseJson(text);
  } catch (const Error& e) {
    out.push_back(std::string("parse error: ") + e.what());
    return out;
  }
  if (!root.isObject()) {
    out.push_back("document is not an object");
    return out;
  }

  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || !schema->isString() ||
      schema->text != "awp-telemetry-report")
    out.push_back("missing or wrong 'schema' identifier");
  const JsonValue* version = root.find("version");
  if (version == nullptr || !version->isNumber() || version->number != 1.0)
    out.push_back("missing or unsupported 'version'");

  double nranksD = 0.0;
  int nranks = 0;
  if (numberMember(root, "report", "nranks", out, &nranksD)) {
    nranks = static_cast<int>(nranksD);
    if (nranks < 1) out.push_back("report: 'nranks' must be >= 1");
  }

  double scratch = 0.0;
  nonNegativeMember(root, "report", "wall_seconds", out, &scratch);
  nonNegativeMember(root, "report", "useful_seconds", out, &scratch);
  nonNegativeMember(root, "report", "replay_seconds", out, &scratch);
  nonNegativeMember(root, "report", "coverage", out, &scratch);
  nonNegativeMember(root, "report", "step", out, &scratch);
  nonNegativeMember(root, "report", "spans_recorded", out, &scratch);
  nonNegativeMember(root, "report", "spans_dropped", out, &scratch);

  // Relative slack for min<=mean<=max comparisons across text round-trips.
  constexpr double kEps = 1e-9;

  const JsonValue* phases = root.find("phases");
  if (phases == nullptr || !phases->isObject()) {
    out.push_back("missing 'phases' object");
  } else {
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      const std::string name(kPhaseJsonNames[p]);
      const std::string context = "phase '" + name + "'";
      const JsonValue* entry = phases->find(name);
      if (entry == nullptr || !entry->isObject()) {
        out.push_back("missing phase '" + name + "'");
        continue;
      }
      double sum = 0, minV = 0, maxV = 0, mean = 0, imb = 0, replay = 0;
      const bool haveSum =
          nonNegativeMember(*entry, context, "sum_seconds", out, &sum);
      const bool haveMin =
          nonNegativeMember(*entry, context, "min_seconds", out, &minV);
      const bool haveMax =
          nonNegativeMember(*entry, context, "max_seconds", out, &maxV);
      const bool haveMean =
          nonNegativeMember(*entry, context, "mean_seconds", out, &mean);
      nonNegativeMember(*entry, context, "replay_seconds", out, &replay);
      if (haveMin && haveMean && minV > mean * (1.0 + kEps) + kEps)
        out.push_back(context + ": min_seconds exceeds mean_seconds");
      if (haveMean && haveMax && mean > maxV * (1.0 + kEps) + kEps)
        out.push_back(context + ": mean_seconds exceeds max_seconds");
      if (haveSum && haveMax && maxV > sum * (1.0 + kEps) + kEps)
        out.push_back(context + ": max_seconds exceeds sum_seconds");
      if (numberMember(*entry, context, "imbalance", out, &imb) &&
          imb < 1.0 - kEps)
        out.push_back(context + ": imbalance below 1");
      double maxRank = 0.0;
      if (numberMember(*entry, context, "max_rank", out, &maxRank) &&
          nranks > 0 && (maxRank < 0 || maxRank >= nranks))
        out.push_back(context + ": max_rank out of range");
    }
  }

  const JsonValue* counters = root.find("counters");
  if (counters == nullptr || !counters->isObject()) {
    out.push_back("missing 'counters' object");
  } else {
    for (std::size_t c = 0; c < kCounterCount; ++c) {
      const std::string name(kCounterJsonNames[c]);
      const std::string context = "counter '" + name + "'";
      const JsonValue* entry = counters->find(name);
      if (entry == nullptr || !entry->isObject()) {
        out.push_back("missing counter '" + name + "'");
        continue;
      }
      double total = 0, minV = 0, maxV = 0;
      nonNegativeMember(*entry, context, "total", out, &total);
      const bool haveMin =
          nonNegativeMember(*entry, context, "min", out, &minV);
      const bool haveMax =
          nonNegativeMember(*entry, context, "max", out, &maxV);
      if (haveMin && haveMax && minV > maxV)
        out.push_back(context + ": min exceeds max");
      double maxRank = 0.0;
      if (numberMember(*entry, context, "max_rank", out, &maxRank) &&
          nranks > 0 && (maxRank < 0 || maxRank >= nranks))
        out.push_back(context + ": max_rank out of range");
    }
  }

  return out;
}

}  // namespace awp::telemetry
