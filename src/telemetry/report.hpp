#pragma once
// Cluster aggregator (layer 2 of the telemetry subsystem): reduce per-rank
// phase times and counters across the Communicator into a ClusterReport,
// render it as structured JSON, dump per-rank JSONL traces, and validate a
// rendered report against the schema (the CI gate and tests both call the
// validator rather than eyeballing text).
//
// aggregate() is collective: every rank contributes its RankSummary via
// gatherBytes to rank 0, which computes per-phase min/max/mean, the
// imbalance ratio (max/mean), and the offender rank behind each max. Only
// rank 0's returned report is populated; other ranks get an empty report
// (valid() == false), mirroring gatherBytes semantics.

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/registry.hpp"
#include "vcluster/comm.hpp"

namespace awp::telemetry {

// Per-phase statistics over ranks, in seconds (exclusive time).
struct PhaseStat {
  Phase phase = Phase::VelocityKernel;
  double sumSeconds = 0.0;   // across ranks
  double minSeconds = 0.0;
  double maxSeconds = 0.0;
  double meanSeconds = 0.0;
  double imbalance = 1.0;    // max / mean (1.0 when mean is zero)
  int maxRank = 0;           // offender: rank holding the max
  double replaySeconds = 0.0;  // summed replay-window time (not useful work)
};

// Per-counter statistics over ranks.
struct CounterStat {
  Counter counter = Counter::CellsUpdated;
  std::uint64_t total = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  int maxRank = 0;
};

struct ClusterReport {
  int nranks = 0;
  std::uint64_t step = 0;        // solver step at emission
  double wallSeconds = 0.0;      // caller-measured wall time covered
  double usefulSeconds = 0.0;    // sum over phases of per-rank mean exclusive
  double replaySeconds = 0.0;    // mean per-rank replay-window time
  // Fraction of wall time attributed to some phase:
  // (usefulSeconds + replaySeconds) / wallSeconds; 0 when no wall given.
  double coverage = 0.0;
  std::vector<PhaseStat> phases;     // kPhaseCount entries, taxonomy order
  std::vector<CounterStat> counters; // kCounterCount entries
  std::uint64_t spansRecorded = 0;
  std::uint64_t spansDropped = 0;

  [[nodiscard]] bool valid() const { return nranks > 0; }
};

// Collective. `wallSeconds` is the caller's measurement of the wall time
// the session covers (the solver passes its run stopwatch). `extraSummaries`
// lets the root fold in slots that are not cluster ranks (the off-rank slot
// for launcher-thread work); counters merge into totals, times are ignored
// for min/max/mean (they describe no rank).
ClusterReport aggregate(vcluster::Communicator& comm, const Session& session,
                        std::uint64_t step, double wallSeconds);

// Render as a JSON document (schema "awp-telemetry-report", version 1).
std::string toJson(const ClusterReport& report);

// Write toJson(report) to `path` atomically (tmp + rename).
void writeReportFile(const std::string& path, const ClusterReport& report);

// Dump one rank's surviving span records as JSONL: one span object per
// line, oldest first. `path` is the complete filename for this rank.
void writeTraceFile(const std::string& path, const RankTelemetry& rankTel);

// Validate a rendered report against the schema. Returns a list of
// violations (empty = valid): missing phases or counters, negative/NaN
// durations, min > mean or mean > max, bad imbalance, out-of-range
// offender ranks. Parse errors surface as a single violation entry.
std::vector<std::string> validateReportJson(const std::string& text);

}  // namespace awp::telemetry
