#pragma once
// Minimal JSON tree, parser, and string escaping — just enough for the
// telemetry report: emit structured reports without a dependency, and
// validate emitted text against the schema in tests and the CI gate.
// Supported: objects, arrays, strings (with the standard escapes and
// BMP \uXXXX), numbers (via strtod), true/false/null. No comments, no
// trailing commas — exactly RFC 8259's grammar for the subset we emit.

#include <string>
#include <utility>
#include <vector>

namespace awp::telemetry {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;                            // Array
  std::vector<std::pair<std::string, JsonValue>> members;  // Object

  // Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  [[nodiscard]] bool isNumber() const { return kind == Kind::Number; }
  [[nodiscard]] bool isString() const { return kind == Kind::String; }
  [[nodiscard]] bool isArray() const { return kind == Kind::Array; }
  [[nodiscard]] bool isObject() const { return kind == Kind::Object; }
};

// Parse a complete JSON document; throws awp::Error (with the byte offset)
// on malformed input or trailing garbage.
JsonValue parseJson(const std::string& text);

// Escape a string for embedding in a JSON document (without quotes).
std::string escapeJson(const std::string& s);

}  // namespace awp::telemetry
