#pragma once
// The fixed phase taxonomy and counter set of the telemetry subsystem.
// Phases attribute wall-clock time to the solver's hot paths (the paper's
// Fig 12 compute/comm/I-O breakdown, at finer grain); counters record
// monotone work and event totals. Both are closed enums so per-rank
// storage is a flat array, aggregation is index-aligned across ranks, and
// the report schema is stable for the bench harness.

#include <array>
#include <cstddef>
#include <string_view>

namespace awp::telemetry {

// Span phases. Order is the report order; names are the JSON identifiers.
enum class Phase : std::size_t {
  VelocityKernel = 0,  // velocity FD update (incl. free-surface images)
  StressKernel,        // stress FD update + source injection
  HaloPack,            // packing exchange planes into send buffers
  HaloExchange,        // posting/completing the exchange (incl. waits)
  HaloUnpack,          // unpacking received planes into ghost cells
  Absorb,              // sponge taper / PML split-field updates
  Rupture,             // fault traction bounding + slip-rate bookkeeping
  Checkpoint,          // checkpoint write/read incl. the collective veto
  Output,              // observation recording + aggregated surface output
  HealthScan,          // preflight + in-loop monitor scans (collective)
  Transfer,            // wide-area transfer leg of the workflow
  RollbackReplay,      // re-execution window after a rollback
  SchedQueue,          // scenario-service admission-queue pop
  SchedDispatch,       // scenario-service lease dispatch + job launch
  RespawnQuiesce,      // surviving rank fenced at the respawn epoch fence
  FabricRoute,         // hazard-fabric owner lookup + local/forward split
  FabricHeartbeat,     // broker lease renewal + membership-view poll
  FabricForward,       // cross-broker submission forwarding (incl. retry)
  ServePublish,        // serving tier: tile fold + publish of a window
  ServeQuery,          // serving tier: exceedance/max query streaming
  ServeNotify,         // serving tier: subscription delta delivery
  CycleStep,           // cycle engine: one adaptive quasi-dynamic step
  CycleBridge,         // cycle engine: event -> scenario-spec submission
  kCount
};

inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::kCount);

inline constexpr std::array<std::string_view, kPhaseCount> kPhaseJsonNames = {
    "velocity_kernel", "stress_kernel", "halo_pack",   "halo_exchange",
    "halo_unpack",     "absorb",        "rupture",     "checkpoint",
    "output",          "health_scan",   "transfer",    "rollback_replay",
    "sched_queue",     "sched_dispatch", "respawn_quiesce",
    "fabric_route",    "fabric_heartbeat", "fabric_forward",
    "serve_publish",   "serve_query",   "serve_notify",
    "cycle_step",      "cycle_bridge"};

[[nodiscard]] inline std::string_view toString(Phase p) {
  return kPhaseJsonNames[static_cast<std::size_t>(p)];
}

// Monotone counters and event totals. Cheap relaxed-atomic increments.
enum class Counter : std::size_t {
  CellsUpdated = 0,      // grid cells advanced one full time step
  FlopsEstimated,        // flops implied by the kernel launches
  HaloBytesSent,
  HaloBytesReceived,
  HaloMessages,
  CheckpointWrites,
  CheckpointBytes,
  CheckpointVetoes,      // collective refusals to persist non-finite state
  OutputBytes,           // aggregated observation bytes written
  WriteRetries,          // retried output write attempts
  TransferBytes,
  TransferRetries,
  Rollbacks,
  DtTightenEvents,       // dt tightened after a rollback
  DtRewidenEvents,       // dt walked back toward the CFL-derived value
  ObservationsRewritten, // step-indexed records overwritten on replay
  SpansDropped,          // ring-buffer overflow (trace truncated)
  ScenariosSubmitted,    // scenario-service submissions accepted or merged
  ScenariosCompleted,    // scenarios settled with products
  ScenariosRejected,     // admission backpressure rejections
  ScenarioRetries,       // requeues after crash/stall/fatal verdicts
  ScenarioCacheHits,     // completed specs served from the artifact cache
  ArtifactCacheHits,     // shared-artifact (mesh/material) cache hits
  RankRespawns,          // in-place rank respawns (recovery ladder rung 2)
  RespawnEscalations,    // respawn ladder fell back to cancel-and-requeue
  BuddyBlobsReplicated,  // checkpoint blobs shipped to the ring buddy
  BuddyRestores,         // restarts served from the in-memory buddy store
  FabricForwards,        // submissions forwarded to a remote owner broker
  FabricReplays,         // submission-log records replayed after a handoff
  FabricHandoffs,        // checkpoint/surface tiers adopted from a lost owner
  FabricViewChanges,     // membership-view epoch bumps observed by brokers
  FabricDegradedHolds,   // submissions parked by a degraded (partitioned) broker
  FabricDedupHits,       // duplicate digests absorbed (forward/replay/at-least-once)
  ServeTilesPublished,   // tile versions made visible to the tile index
  ServeTileBytes,        // payload bytes behind published tile versions
  ServeChunkDedups,      // tile chunks already present in the cache tier
  ServePublishDrops,     // window publishes lost to injected drops
  ServeQueries,          // exceedance/max-over-catalog queries answered
  ServeTilesScanned,     // tiles streamed through the query path
  ServeNotifies,         // subscription deltas delivered to clients
  ServeReconciles,       // anti-entropy passes re-publishing lagging tiles
  CycleSteps,            // adaptive quasi-dynamic steps taken
  CycleEventsDetected,   // slip-rate windows opened (nucleations)
  CycleEventsSubmitted,  // cycle events bridged into scenario submissions
  CycleStatePerturbs,    // injected state perturbations absorbed
  kCount
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

inline constexpr std::array<std::string_view, kCounterCount>
    kCounterJsonNames = {
        "cells_updated",      "flops_estimated",    "halo_bytes_sent",
        "halo_bytes_received", "halo_messages",     "checkpoint_writes",
        "checkpoint_bytes",   "checkpoint_vetoes",  "output_bytes",
        "write_retries",      "transfer_bytes",     "transfer_retries",
        "rollbacks",          "dt_tighten_events",  "dt_rewiden_events",
        "observations_rewritten", "spans_dropped",
        "scenarios_submitted", "scenarios_completed", "scenarios_rejected",
        "scenario_retries",   "scenario_cache_hits", "artifact_cache_hits",
        "rank_respawns",      "respawn_escalations",
        "buddy_blobs_replicated", "buddy_restores",
        "fabric_forwards",    "fabric_replays",      "fabric_handoffs",
        "fabric_view_changes", "fabric_degraded_holds",
        "fabric_dedup_hits",
        "serve_tiles_published", "serve_tile_bytes",
        "serve_chunk_dedups", "serve_publish_drops", "serve_queries",
        "serve_tiles_scanned", "serve_notifies", "serve_reconciles",
        "cycle_steps", "cycle_events_detected", "cycle_events_submitted",
        "cycle_state_perturbs"};

[[nodiscard]] inline std::string_view toString(Counter c) {
  return kCounterJsonNames[static_cast<std::size_t>(c)];
}

}  // namespace awp::telemetry
