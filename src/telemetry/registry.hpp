#pragma once
// Per-rank span tracer and counter registry (layer 1 of the telemetry
// subsystem; see report.hpp for the cluster aggregator).
//
// Design constraints, in order:
//  * Disabled must be free. Like the fault injector, the session is a
//    process-global atomic pointer; with no session installed a ScopedSpan
//    constructor is one relaxed load and a branch — no clock reads, no
//    allocation, nothing the optimizer must keep.
//  * The hot path must not lock. Each rank thread owns one RankTelemetry
//    slot: span records go into a pre-allocated ring buffer written only
//    by the owning thread (a monotone write index makes overflow explicit
//    rather than silent), and counters are relaxed atomics so off-thread
//    increments (the workflow's transfer leg runs on the launcher thread)
//    stay safe.
//  * Attribution must be exclusive. Spans nest (a PML update inside the
//    velocity block, a pack inside an exchange); each frame subtracts its
//    children's time before accumulating into its phase bucket, so the
//    per-phase totals partition wall time instead of double-counting it.
//  * Replay is not useful work. While a RollbackReplay span is open every
//    enclosed span is flagged and its exclusive time lands in a separate
//    replay bucket, so the report can state both what a run spent and what
//    of that was re-execution of a lost window.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "telemetry/taxonomy.hpp"

namespace awp::telemetry {

// One closed span in the per-rank trace ring.
struct SpanRecord {
  Phase phase = Phase::VelocityKernel;
  std::uint16_t depth = 0;   // nesting depth at open (0 = top level)
  bool replay = false;       // opened inside a rollback-replay window
  std::uint64_t step = 0;    // solver step current at open
  std::uint64_t startNs = 0; // since session epoch
  std::uint64_t durationNs = 0;
};

// Flat, trivially-copyable per-rank totals — the unit of aggregation.
struct RankSummary {
  std::int32_t rank = -1;
  std::uint64_t phaseNs[kPhaseCount] = {};   // exclusive, useful work
  std::uint64_t replayNs[kPhaseCount] = {};  // exclusive, replay windows
  std::uint64_t counters[kCounterCount] = {};
  std::uint64_t spansRecorded = 0;
  std::uint64_t spansDropped = 0;
};

class RankTelemetry {
 public:
  RankTelemetry(int rank, std::size_t ringCapacity,
                std::chrono::steady_clock::time_point epoch);

  // Open-span frame, stack-allocated inside ScopedSpan/ManualSpan. Frames
  // must close in LIFO order on the owning thread.
  struct Frame {
    Phase phase = Phase::VelocityKernel;
    std::uint64_t t0 = 0;
    std::uint64_t childNs = 0;
    Frame* parent = nullptr;
  };

  // open/close/setStep mutate single-writer state (frame stack, phase
  // totals, trace ring). They are generation-fenced: the write proceeds
  // only when the calling thread's claim token (taken by
  // resetThreadSpans) matches the slot's current generation, so a retired
  // incarnation's late calls are silent no-ops instead of racing the
  // replacement writer. See retireSlot().
  void open(Frame& frame, Phase phase);
  void close(Frame& frame);
  void setStep(std::uint64_t step);

  void count(Counter c, std::uint64_t delta) {
    counters_[static_cast<std::size_t>(c)].fetch_add(
        delta, std::memory_order_relaxed);
  }

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] std::uint64_t counterValue(Counter c) const {
    return counters_[static_cast<std::size_t>(c)].load(
        std::memory_order_relaxed);
  }
  // Exclusive per-phase totals (useful / replay), in nanoseconds.
  [[nodiscard]] std::uint64_t phaseNs(Phase p) const {
    return phaseNs_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] std::uint64_t replayNs(Phase p) const {
    return replayNs_[static_cast<std::size_t>(p)];
  }

  // Snapshot of the totals (call from the owning thread, or after join).
  [[nodiscard]] RankSummary summary() const;
  // Surviving trace records, oldest first (ring overflow drops the oldest).
  [[nodiscard]] std::vector<SpanRecord> traceSnapshot() const;

  [[nodiscard]] std::uint64_t nowNs() const;

  // Drops any open-frame stack (see telemetry::resetThreadSpans).
  void resetSpanState() {
    top_ = nullptr;
    depth_ = 0;
    replayDepth_ = 0;
  }

  // --- slot generation fence (stall-respawn drain) -----------------------
  // A wedged incarnation may still be executing when its rank is respawned
  // in place: its thread holds ScopedSpan frames that will close into this
  // slot whenever the injected stall ends. retire() advances the slot
  // generation (fencing every writer holding an older claim) and then
  // WAITS for any write already past the fence check to finish, so when it
  // returns the zombie can never touch the slot again and the replacement
  // incarnation reuses it bit-cleanly.
  void retire();
  [[nodiscard]] std::uint64_t generation() const { return gen_.load(); }

 private:
  // Fenced-write bracket: enter() registers the write and admits it only
  // while the caller's claim matches the generation; exit() closes it.
  // Seq-cst on both atomics makes retire()'s bump-then-wait airtight: a
  // writer that read the pre-bump generation is either waited out (its
  // exit's release is observed by retire's acquire of zero) or it reads
  // the new generation and backs off without writing.
  bool enterWrite();
  void exitWrite() { activeWriters_.fetch_sub(1, std::memory_order_release); }

  int rank_;
  std::chrono::steady_clock::time_point epoch_;
  Frame* top_ = nullptr;
  std::uint16_t depth_ = 0;
  int replayDepth_ = 0;
  std::uint64_t step_ = 0;
  std::atomic<std::uint64_t> gen_{0};
  std::atomic<int> activeWriters_{0};
  std::uint64_t phaseNs_[kPhaseCount] = {};
  std::uint64_t replayNs_[kPhaseCount] = {};
  std::array<std::atomic<std::uint64_t>, kCounterCount> counters_ = {};
  std::vector<SpanRecord> ring_;
  std::uint64_t ringWrites_ = 0;
};

struct SessionConfig {
  int nranks = 1;
  std::size_t ringCapacity = 1 << 16;  // span records retained per rank
};

// One telemetry session shared by every rank of a virtual cluster; owns
// one RankTelemetry slot per rank plus an off-rank slot for threads that
// are not cluster ranks (the workflow's launcher-thread transfer leg).
class Session {
 public:
  explicit Session(const SessionConfig& config);

  [[nodiscard]] int nranks() const { return config_.nranks; }
  [[nodiscard]] const SessionConfig& config() const { return config_; }
  [[nodiscard]] std::chrono::steady_clock::time_point epoch() const {
    return epoch_;
  }

  // rank in [0, nranks) selects that rank's slot; anything else (notably
  // the launcher thread's -1) selects the shared off-rank slot.
  [[nodiscard]] RankTelemetry& slot(int rank);
  [[nodiscard]] const RankTelemetry& slot(int rank) const;
  [[nodiscard]] RankTelemetry& offRankSlot() { return *slots_.back(); }
  [[nodiscard]] const RankTelemetry& offRankSlot() const {
    return *slots_.back();
  }

 private:
  SessionConfig config_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<RankTelemetry>> slots_;  // nranks + 1
};

namespace detail {
extern std::atomic<Session*> g_session;
}

// The process-global session consulted by all hooks (nullptr = disabled).
inline Session* activeSession() {
  return detail::g_session.load(std::memory_order_acquire);
}
inline bool enabled() { return activeSession() != nullptr; }
void installSession(Session* session);

// RAII install/uninstall for harnesses and tests.
class ScopedSession {
 public:
  explicit ScopedSession(Session& session) { installSession(&session); }
  ~ScopedSession() { installSession(nullptr); }
  ScopedSession(const ScopedSession&) = delete;
  ScopedSession& operator=(const ScopedSession&) = delete;
};

// The current thread's slot, or nullptr when telemetry is disabled.
// Rank attribution reuses the fault layer's thread tag (set by the
// cluster launcher for every rank thread).
RankTelemetry* currentRank();

// Slot-base offset for the current thread. When several thread clusters
// share one session (the scenario service runs concurrent jobs against a
// core-budget-sized session), each job's rank threads call this with the
// first core id of their lease so rank r maps to slot base + r and
// concurrent jobs never collide on a slot. Zero (the default) preserves
// the single-cluster mapping.
void setThreadSlotBase(int base);
[[nodiscard]] int threadSlotBase();

// Clears any span state left on the current thread's slot (open-frame
// stack, depth, replay nesting) and CLAIMS the slot's current generation
// for this thread. Slots are reused across scenario-service attempts: a
// rank thread that unwound through an exception leaves its Frame pointers
// dangling into a dead stack, so every attempt resets its slots before
// opening new spans. Totals and counters are preserved.
void resetThreadSpans();

// Fence a slot against its previous owner and drain any write in flight
// (see RankTelemetry::retire). The scenario service calls this from the
// supervisor's onRespawn hook — which runs BEFORE the replacement thread
// spawns — so a stall-cause respawn hands the replacement a slot the
// wedged zombie incarnation can provably never write again. Out-of-range
// indices are ignored (the shared off-rank slot is never retired: its
// writers are long-lived threads that would have no way to re-claim).
void retireSlot(int slot);

// --- fast-path helpers ----------------------------------------------------

inline void count(Counter c, std::uint64_t delta = 1) {
  if (RankTelemetry* rt = currentRank()) rt->count(c, delta);
}

inline void stepMark(std::uint64_t step) {
  if (RankTelemetry* rt = currentRank()) rt->setStep(step);
}

// RAII span: times a scope into a phase bucket and the trace ring.
class ScopedSpan {
 public:
  explicit ScopedSpan(Phase phase) {
    if (RankTelemetry* rt = currentRank()) {
      rt_ = rt;
      rt->open(frame_, phase);
    }
  }
  ~ScopedSpan() {
    if (rt_ != nullptr) rt_->close(frame_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  RankTelemetry* rt_ = nullptr;
  RankTelemetry::Frame frame_{};
};

// Explicitly opened/closed span for windows that outlive any one scope
// (the solver's rollback-replay window spans many step() calls). Must be
// closed on the thread that opened it, with LIFO discipline against any
// scoped spans opened in between (which is automatic: scoped spans unwind
// before control returns to the owner of the manual span).
class ManualSpan {
 public:
  void begin(Phase phase) {
    if (active()) return;
    if (RankTelemetry* rt = currentRank()) {
      rt_ = rt;
      rt->open(frame_, phase);
    }
  }
  void end() {
    if (rt_ != nullptr) {
      rt_->close(frame_);
      rt_ = nullptr;
      frame_ = RankTelemetry::Frame{};
    }
  }
  [[nodiscard]] bool active() const { return rt_ != nullptr; }

 private:
  RankTelemetry* rt_ = nullptr;
  RankTelemetry::Frame frame_{};
};

}  // namespace awp::telemetry
