#include "telemetry/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "telemetry/json.hpp"
#include "util/error.hpp"

namespace awp::telemetry {

namespace {

// One normalized event before rendering: lane is the trace tid.
struct LaneSpan {
  int lane = 0;
  std::string phase;
  std::uint64_t step = 0;
  std::uint64_t startNs = 0;
  std::uint64_t durationNs = 0;
  int depth = 0;
  bool replay = false;
};

std::string fmtMicros(std::uint64_t ns) {
  // Chrome trace timestamps are microseconds; keep nanosecond precision
  // as a fixed three-decimal fraction (avoids %g rounding on long runs).
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

void appendMeta(std::ostringstream& os, int lane, const std::string& name,
                bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": "
     << lane << ", \"args\": {\"name\": \"" << escapeJson(name) << "\"}}";
}

void appendSpan(std::ostringstream& os, const LaneSpan& s, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\": \"" << escapeJson(s.phase) << "\", \"cat\": \""
     << (s.replay ? "replay" : "useful") << "\", \"ph\": \"X\", \"ts\": "
     << fmtMicros(s.startNs) << ", \"dur\": " << fmtMicros(s.durationNs)
     << ", \"pid\": 0, \"tid\": " << s.lane << ", \"args\": {\"step\": "
     << s.step << ", \"depth\": " << s.depth << "}}";
}

void appendInstant(std::ostringstream& os, const InstantEvent& ev, int lane,
                   bool& first) {
  if (!first) os << ",\n";
  first = false;
  // Thread-scoped instant ("s":"t"): a vertical tick on the service lane.
  os << "{\"name\": \"" << escapeJson(ev.name)
     << "\", \"cat\": \"recovery\", \"ph\": \"i\", \"s\": \"t\", \"ts\": "
     << fmtMicros(ev.tsNs) << ", \"pid\": 0, \"tid\": " << lane << "}";
}

std::string render(const std::vector<LaneSpan>& spans, int serviceLane,
                   const std::vector<InstantEvent>& instants = {}) {
  std::ostringstream os;
  os << "[\n";
  bool first = true;
  os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
     << "\"args\": {\"name\": \"awp\"}}";
  first = false;
  std::vector<int> lanes;
  for (const LaneSpan& s : spans) lanes.push_back(s.lane);
  if (!instants.empty()) lanes.push_back(serviceLane);
  std::sort(lanes.begin(), lanes.end());
  lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());
  for (int lane : lanes) {
    appendMeta(os, lane,
               lane == serviceLane ? std::string("service")
                                   : "rank " + std::to_string(lane),
               first);
  }
  for (const LaneSpan& s : spans) appendSpan(os, s, first);
  for (const InstantEvent& ev : instants)
    appendInstant(os, ev, serviceLane, first);
  os << "\n]\n";
  return os.str();
}

void collectSlot(const RankTelemetry& slot, int lane,
                 std::vector<LaneSpan>& out) {
  for (const SpanRecord& rec : slot.traceSnapshot()) {
    LaneSpan s;
    s.lane = lane;
    s.phase = std::string(toString(rec.phase));
    s.step = rec.step;
    s.startNs = rec.startNs;
    s.durationNs = rec.durationNs;
    s.depth = rec.depth;
    s.replay = rec.replay;
    out.push_back(std::move(s));
  }
}

void writeTextAtomically(const std::string& path, const std::string& text) {
  namespace fs = std::filesystem;
  const fs::path target(path);
  if (target.has_parent_path()) fs::create_directories(target.parent_path());
  const fs::path tmp = target.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("telemetry: cannot open " + tmp.string());
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.flush();
    if (!out) throw Error("telemetry: short write to " + tmp.string());
  }
  fs::rename(tmp, target);
}

}  // namespace

std::string toChromeTrace(const Session& session,
                          const std::vector<InstantEvent>& instants) {
  std::vector<LaneSpan> spans;
  for (int r = 0; r < session.nranks(); ++r)
    collectSlot(session.slot(r), r, spans);
  collectSlot(session.offRankSlot(), session.nranks(), spans);
  return render(spans, session.nranks(), instants);
}

std::string chromeTraceFromJsonl(const std::string& jsonl) {
  std::vector<LaneSpan> spans;
  int maxRank = -1;
  std::istringstream in(jsonl);
  std::string line;
  std::size_t lineNo = 0;
  std::vector<std::size_t> offRankIdx;  // spans awaiting the service lane
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    JsonValue v;
    try {
      v = parseJson(line);
    } catch (const Error& e) {
      throw Error("chrome_trace: line " + std::to_string(lineNo) + ": " +
                  e.what());
    }
    if (!v.isObject())
      throw Error("chrome_trace: line " + std::to_string(lineNo) +
                  " is not an object");
    const JsonValue* rank = v.find("rank");
    const JsonValue* phase = v.find("phase");
    const JsonValue* step = v.find("step");
    const JsonValue* start = v.find("start_ns");
    const JsonValue* dur = v.find("duration_ns");
    const JsonValue* depth = v.find("depth");
    const JsonValue* replay = v.find("replay");
    if (rank == nullptr || !rank->isNumber() || phase == nullptr ||
        !phase->isString() || start == nullptr || !start->isNumber() ||
        dur == nullptr || !dur->isNumber())
      throw Error("chrome_trace: line " + std::to_string(lineNo) +
                  " is missing span fields");
    LaneSpan s;
    const int r = static_cast<int>(rank->number);
    s.phase = phase->text;
    s.step = step != nullptr && step->isNumber()
                 ? static_cast<std::uint64_t>(step->number)
                 : 0;
    s.startNs = static_cast<std::uint64_t>(start->number);
    s.durationNs = static_cast<std::uint64_t>(dur->number);
    s.depth = depth != nullptr && depth->isNumber()
                  ? static_cast<int>(depth->number)
                  : 0;
    s.replay = replay != nullptr && replay->kind == JsonValue::Kind::Bool &&
               replay->boolean;
    if (r < 0) {
      offRankIdx.push_back(spans.size());
    } else {
      s.lane = r;
      maxRank = std::max(maxRank, r);
    }
    spans.push_back(std::move(s));
  }
  const int serviceLane = maxRank + 1;
  for (std::size_t i : offRankIdx) spans[i].lane = serviceLane;
  return render(spans, serviceLane);
}

void writeChromeTraceFile(const std::string& path, const Session& session,
                          const std::vector<InstantEvent>& instants) {
  writeTextAtomically(path, toChromeTrace(session, instants));
}

}  // namespace awp::telemetry
