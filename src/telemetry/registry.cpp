#include "telemetry/registry.hpp"

#include <thread>

#include "fault/injector.hpp"
#include "util/error.hpp"

namespace awp::telemetry {

namespace detail {
std::atomic<Session*> g_session{nullptr};
}

void installSession(Session* session) {
  detail::g_session.store(session, std::memory_order_release);
}

namespace {
thread_local int t_slotBase = 0;
// Generation claim for the slot this thread writes (taken by
// resetThreadSpans). The default 0 matches a never-retired slot, so
// threads outside the respawn ladder are unaffected by the fence.
thread_local std::uint64_t t_claim = 0;

RankTelemetry* threadSlot() {
  Session* s = activeSession();
  if (s == nullptr) return nullptr;
  const int r = fault::threadRank();
  // Off-rank threads (r < 0) keep the shared off-rank slot regardless of
  // any base; rank threads shift by the lease base so concurrent clusters
  // sharing one session land on disjoint slots.
  return &s->slot(r < 0 ? r : r + t_slotBase);
}
}  // namespace

void setThreadSlotBase(int base) { t_slotBase = base; }

int threadSlotBase() { return t_slotBase; }

RankTelemetry* currentRank() {
  RankTelemetry* rt = threadSlot();
  // A retired claim means this thread is a fenced zombie incarnation: its
  // slot has been handed to a replacement, so all hooks go quiet. (The
  // check here is advisory — open/close/setStep re-check under the
  // active-writer bracket, which is what retire() actually drains.)
  if (rt != nullptr && rt->generation() != t_claim) return nullptr;
  return rt;
}

void resetThreadSpans() {
  // Bypass currentRank(): a replacement incarnation arrives with a stale
  // default claim and must be able to adopt the slot's new generation.
  if (RankTelemetry* rt = threadSlot()) {
    t_claim = rt->generation();
    rt->resetSpanState();
  }
}

void retireSlot(int slot) {
  Session* s = activeSession();
  if (s == nullptr) return;
  if (slot < 0 || slot >= s->nranks()) return;
  s->slot(slot).retire();
}

RankTelemetry::RankTelemetry(int rank, std::size_t ringCapacity,
                             std::chrono::steady_clock::time_point epoch)
    : rank_(rank), epoch_(epoch) {
  AWP_CHECK(ringCapacity > 0);
  ring_.resize(ringCapacity);
}

std::uint64_t RankTelemetry::nowNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

bool RankTelemetry::enterWrite() {
  activeWriters_.fetch_add(1);  // seq_cst: ordered against retire()'s bump
  if (gen_.load() == t_claim) return true;
  exitWrite();
  return false;
}

void RankTelemetry::retire() {
  gen_.fetch_add(1);
  // Drain: a writer that slipped past the fence with the old generation is
  // inside its enter/exit bracket; wait it out so its plain-field writes
  // are ordered (via its exit release / our acquire of zero) before the
  // replacement thread — spawned after this returns — touches the slot.
  while (activeWriters_.load(std::memory_order_acquire) != 0)
    std::this_thread::yield();
}

void RankTelemetry::setStep(std::uint64_t step) {
  if (!enterWrite()) return;
  step_ = step;
  exitWrite();
}

void RankTelemetry::open(Frame& frame, Phase phase) {
  if (!enterWrite()) return;
  frame.phase = phase;
  frame.childNs = 0;
  frame.parent = top_;
  top_ = &frame;
  ++depth_;
  if (phase == Phase::RollbackReplay) ++replayDepth_;
  frame.t0 = nowNs();  // last, so setup cost lands in the parent
  exitWrite();
}

void RankTelemetry::close(Frame& frame) {
  // A fenced close matches a fenced open (the generation only advances,
  // so a claim that failed at open cannot succeed at close): the pair is
  // a no-op and the replacement's resetSpanState clears any frame the
  // zombie managed to push before the fence.
  if (!enterWrite()) return;
  const std::uint64_t t1 = nowNs();
  const std::uint64_t dur = t1 - frame.t0;
  top_ = frame.parent;
  --depth_;  // LIFO: equals the nesting depth this frame was opened at
  if (frame.parent != nullptr) frame.parent->childNs += dur;
  if (frame.phase == Phase::RollbackReplay) --replayDepth_;
  const bool replay =
      replayDepth_ > 0 && frame.phase != Phase::RollbackReplay;
  const std::uint64_t exclusive =
      dur > frame.childNs ? dur - frame.childNs : 0;
  (replay ? replayNs_ : phaseNs_)[static_cast<std::size_t>(frame.phase)] +=
      exclusive;

  SpanRecord& rec = ring_[ring_.empty() ? 0 : ringWrites_ % ring_.size()];
  rec.phase = frame.phase;
  rec.depth = depth_;
  rec.replay = replay;
  rec.step = step_;
  rec.startNs = frame.t0;
  rec.durationNs = dur;
  ++ringWrites_;
  exitWrite();
}

RankSummary RankTelemetry::summary() const {
  RankSummary s;
  s.rank = rank_;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    s.phaseNs[p] = phaseNs_[p];
    s.replayNs[p] = replayNs_[p];
  }
  for (std::size_t c = 0; c < kCounterCount; ++c)
    s.counters[c] = counters_[c].load(std::memory_order_relaxed);
  s.spansRecorded = ringWrites_;
  s.spansDropped =
      ringWrites_ > ring_.size() ? ringWrites_ - ring_.size() : 0;
  s.counters[static_cast<std::size_t>(Counter::SpansDropped)] +=
      s.spansDropped;
  return s;
}

std::vector<SpanRecord> RankTelemetry::traceSnapshot() const {
  std::vector<SpanRecord> out;
  const std::uint64_t kept =
      ringWrites_ < ring_.size() ? ringWrites_
                                 : static_cast<std::uint64_t>(ring_.size());
  out.reserve(static_cast<std::size_t>(kept));
  const std::uint64_t first = ringWrites_ - kept;
  for (std::uint64_t n = 0; n < kept; ++n)
    out.push_back(ring_[(first + n) % ring_.size()]);
  return out;
}

Session::Session(const SessionConfig& config)
    : config_(config), epoch_(std::chrono::steady_clock::now()) {
  AWP_CHECK(config_.nranks > 0);
  slots_.reserve(static_cast<std::size_t>(config_.nranks) + 1);
  for (int r = 0; r < config_.nranks; ++r)
    slots_.push_back(std::make_unique<RankTelemetry>(
        r, config_.ringCapacity, epoch_));
  // The off-rank slot (launcher thread, workflow stages).
  slots_.push_back(
      std::make_unique<RankTelemetry>(-1, config_.ringCapacity, epoch_));
}

RankTelemetry& Session::slot(int rank) {
  if (rank < 0 || rank >= config_.nranks) return *slots_.back();
  return *slots_[static_cast<std::size_t>(rank)];
}

const RankTelemetry& Session::slot(int rank) const {
  if (rank < 0 || rank >= config_.nranks) return *slots_.back();
  return *slots_[static_cast<std::size_t>(rank)];
}

}  // namespace awp::telemetry
