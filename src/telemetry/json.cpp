#include "telemetry/json.hpp"

#include <cctype>
#include <cstdlib>

#include "util/error.hpp"

namespace awp::telemetry {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue document() {
    JsonValue v = value();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json: " + what + " at byte " + std::to_string(pos_));
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeIf(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void literal(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) != 0)
      fail("invalid literal");
    pos_ += word.size();
  }

  JsonValue value() {
    skipWs();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.text = string();
        return v;
      }
      case 't': {
        literal("true");
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        literal("false");
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        literal("null");
        return JsonValue{};
      }
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skipWs();
    if (consumeIf('}')) return v;
    while (true) {
      skipWs();
      std::string key = string();
      skipWs();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      skipWs();
      if (consumeIf(',')) continue;
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skipWs();
    if (consumeIf(']')) return v;
    while (true) {
      v.items.push_back(value());
      skipWs();
      if (consumeIf(',')) continue;
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': out += unicodeEscape(); break;
        default: fail("invalid escape");
      }
    }
  }

  std::string unicodeEscape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned cp = 0;
    for (int n = 0; n < 4; ++n) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    // BMP only; encode as UTF-8. (Surrogate pairs never appear in the
    // identifiers and paths the report emits.)
    std::string out;
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
    return out;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (consumeIf('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("malformed number");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = d;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parseJson(const std::string& text) { return Parser(text).document(); }

std::string escapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  static constexpr char kHex[] = "0123456789abcdef";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xF]);
          out.push_back(kHex[static_cast<unsigned char>(c) & 0xF]);
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  return out;
}

}  // namespace awp::telemetry
