#pragma once
// Chrome-trace exporter (chrome://tracing / Perfetto "JSON array format").
// Converts the per-rank span rings of a Session — or previously dumped
// per-rank JSONL trace files — into one self-contained JSON array of
// complete ("ph":"X") events, one timeline lane per rank plus a "service"
// lane for off-rank work (the scenario-service dispatcher, workflow
// transfer legs). Replay-window spans are categorised "replay" so the
// viewer can filter re-execution out of the useful-work picture.

#include <string>
#include <vector>

#include "telemetry/registry.hpp"

namespace awp::telemetry {

// Render every slot of the session (ranks 0..nranks-1 plus the off-rank
// slot as lane nranks, named "service"). Call after the rank threads have
// joined — trace rings are single-writer and read here without locks.
[[nodiscard]] std::string toChromeTrace(const Session& session);

// Same conversion from JSONL trace lines (the writeTraceFile format):
// one span object per line, possibly concatenated from several per-rank
// files. Lines are attributed to lanes by their "rank" field (rank < 0
// maps to the "service" lane). Throws awp::Error on malformed lines.
[[nodiscard]] std::string chromeTraceFromJsonl(const std::string& jsonl);

// Write toChromeTrace(session) to `path` atomically (tmp + rename).
void writeChromeTraceFile(const std::string& path, const Session& session);

}  // namespace awp::telemetry
