#pragma once
// Chrome-trace exporter (chrome://tracing / Perfetto "JSON array format").
// Converts the per-rank span rings of a Session — or previously dumped
// per-rank JSONL trace files — into one self-contained JSON array of
// complete ("ph":"X") events, one timeline lane per rank plus a "service"
// lane for off-rank work (the scenario-service dispatcher, workflow
// transfer legs). Replay-window spans are categorised "replay" so the
// viewer can filter re-execution out of the useful-work picture.

#include <string>
#include <vector>

#include "telemetry/registry.hpp"

namespace awp::telemetry {

// A point-in-time marker rendered as a chrome-trace instant event
// ("ph":"i") on the service lane — respawn and escalation episodes use
// these, since they are moments in the supervisor's timeline rather than
// any rank's span.
struct InstantEvent {
  std::string name;
  std::uint64_t tsNs = 0;  // ns since the session epoch
};

// Render every slot of the session (ranks 0..nranks-1 plus the off-rank
// slot as lane nranks, named "service"). Call after the rank threads have
// joined — trace rings are single-writer and read here without locks.
// `instants` (optional) are drawn on the service lane.
[[nodiscard]] std::string toChromeTrace(
    const Session& session, const std::vector<InstantEvent>& instants = {});

// Same conversion from JSONL trace lines (the writeTraceFile format):
// one span object per line, possibly concatenated from several per-rank
// files. Lines are attributed to lanes by their "rank" field (rank < 0
// maps to the "service" lane). Throws awp::Error on malformed lines.
[[nodiscard]] std::string chromeTraceFromJsonl(const std::string& jsonl);

// Write toChromeTrace(session, instants) to `path` atomically (tmp +
// rename).
void writeChromeTraceFile(const std::string& path, const Session& session,
                          const std::vector<InstantEvent>& instants = {});

}  // namespace awp::telemetry
