#pragma once
// Code-version evolution of AWP-ODC (Table 2): which optimization each
// version introduced, and the per-version performance traits used to
// regenerate Figs 12–14. The calibration constants come from the paper's
// own reported gains (§IV, §V.A):
//   * asynchronous communication:   >7x comm reduction at 223K cores,
//     28% -> 75% parallel efficiency on 60K Ranger cores;
//   * single-CPU optimization:      -31% compute (reciprocals), -2%
//     (unrolling), -7% (cache blocking);
//   * reduced algorithm-level comm: 75% fewer bytes per stress component
//     in the off-axis directions, 15% wall-clock at full scale;
//   * overlap:                      11–21% at 65,610 cores (v7.0 only);
//   * I/O aggregation:              49% -> <2% I/O share of wall clock.

#include <string>
#include <vector>

namespace awp::perfmodel {

enum class CodeVersion {
  V1_0,  // 2004  TeraShake-K      MPI tuning
  V2_0,  // 2005  TeraShake-D      I/O tuning
  V3_0,  // 2006  PN MegaQuake     partitioned mesh
  V4_0,  // 2007  ShakeOut-K       incorporated SGSN
  V5_0,  // 2008  ShakeOut-D       asynchronous communication
  V6_0,  // 2009  W2W              single-CPU optimization (+overlap in 7.0)
  V7_0,  //       overlap
  V7_1,  //       cache blocking
  V7_2,  // 2010  M8               reduced algorithm-level communication
};

struct VersionTraits {
  CodeVersion version;
  std::string label;         // "7.2"
  int year;                  // Table 2 "Year"
  std::string simulation;    // Table 2 "Simulations"
  std::string optimization;  // Table 2 "Optimization"
  double scecAllocMSu;       // Table 2 "SCEC alloc. SUs" [millions]
  double paperSustainedTflops;  // Table 2 "Sustain. Tflop/s"

  // Capability flags accumulated up to this version.
  bool ioTuned = false;          // v2.0+: aggregated output buffers
  bool partitionedMesh = false;  // v3.0+: pre-partitioned mesh input
  bool sgsn = false;             // v4.0+: dynamic rupture mode
  bool asyncComm = false;        // v5.0+
  bool singleCpuOpt = false;     // v6.0+: reciprocals + unrolling
  bool overlap = false;          // v7.0 only (not in 7.2, §V.A)
  bool cacheBlocking = false;    // v7.1+
  bool reducedComm = false;      // v7.2
};

// All versions in Table 2 order.
const std::vector<VersionTraits>& versionTable();
const VersionTraits& traitsOf(CodeVersion v);

// Calibration constants (paper-reported gains).
namespace calib {
inline constexpr double kReciprocalGain = 0.31;   // §IV.B
inline constexpr double kUnrollGain = 0.02;       // §IV.B
inline constexpr double kCacheBlockGain = 0.07;   // §IV.B
inline constexpr double kReducedCommBytes = 0.50; // avg byte reduction §IV.A
inline constexpr double kOverlapHide = 0.60;      // fraction of comm hidden
inline constexpr double kIoShareUntuned = 0.49;   // §III.E
inline constexpr double kIoShareTuned = 0.02;     // §III.E
// Synchronous-model latency cascade on NUMA machines: the accrued latency
// grows with the communication path length ~ P^(1/3) (§IV.A). Coefficient
// calibrated so the async redesign yields the paper's ~7x comm reduction
// at 223,074 cores.
inline constexpr double kSyncCascade = 0.115;
}  // namespace calib

}  // namespace awp::perfmodel
