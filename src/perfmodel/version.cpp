#include "perfmodel/version.hpp"

#include "util/error.hpp"

namespace awp::perfmodel {

const std::vector<VersionTraits>& versionTable() {
  static const std::vector<VersionTraits> table = [] {
    std::vector<VersionTraits> t;
    VersionTraits v{};

    v.version = CodeVersion::V1_0;
    v.label = "1.0";
    v.year = 2004;
    v.simulation = "TeraShake-K";
    v.optimization = "MPI tuning";
    v.scecAllocMSu = 0.5;
    v.paperSustainedTflops = 0.04;
    t.push_back(v);

    v.version = CodeVersion::V2_0;
    v.label = "2.0";
    v.year = 2005;
    v.simulation = "TeraShake-D";
    v.optimization = "I/O tuning";
    v.scecAllocMSu = 1.4;
    v.paperSustainedTflops = 0.68;
    v.ioTuned = true;
    t.push_back(v);

    v.version = CodeVersion::V3_0;
    v.label = "3.0";
    v.year = 2006;
    v.simulation = "PN MegaQuake";
    v.optimization = "partitioned mesh";
    v.scecAllocMSu = 1.0;
    v.paperSustainedTflops = 1.44;
    v.partitionedMesh = true;
    t.push_back(v);

    v.version = CodeVersion::V4_0;
    v.label = "4.0";
    v.year = 2007;
    v.simulation = "ShakeOut-K";
    v.optimization = "incorporated SGSN";
    v.scecAllocMSu = 15.0;
    v.paperSustainedTflops = 7.29;
    v.sgsn = true;
    t.push_back(v);

    v.version = CodeVersion::V5_0;
    v.label = "5.0";
    v.year = 2008;
    v.simulation = "ShakeOut-D";
    v.optimization = "asynchronous";
    v.scecAllocMSu = 27.0;
    v.paperSustainedTflops = 49.9;
    v.asyncComm = true;
    t.push_back(v);

    v.version = CodeVersion::V6_0;
    v.label = "6.0";
    v.year = 2009;
    v.simulation = "W2W";
    v.optimization = "single CPU opt";
    v.scecAllocMSu = 32.0;
    v.paperSustainedTflops = 86.7;
    v.singleCpuOpt = true;
    t.push_back(v);

    v.version = CodeVersion::V7_0;
    v.label = "7.0";
    v.year = 2010;
    v.simulation = "M8 prep";
    v.optimization = "overlap";
    v.scecAllocMSu = 61.0;
    v.paperSustainedTflops = 0.0;  // not separately reported
    v.overlap = true;
    t.push_back(v);

    v.version = CodeVersion::V7_1;
    v.label = "7.1";
    v.year = 2010;
    v.simulation = "M8 prep";
    v.optimization = "cache blocking";
    v.scecAllocMSu = 61.0;
    v.paperSustainedTflops = 0.0;
    v.overlap = false;  // "(not included in v. 7.2)" — dropped after 7.0
    v.cacheBlocking = true;
    t.push_back(v);

    v.version = CodeVersion::V7_2;
    v.label = "7.2";
    v.year = 2010;
    v.simulation = "M8";
    v.optimization = "reduced comm";
    v.scecAllocMSu = 61.0;
    v.paperSustainedTflops = 220.0;
    v.reducedComm = true;
    t.push_back(v);
    return t;
  }();
  return table;
}

const VersionTraits& traitsOf(CodeVersion v) {
  for (const auto& t : versionTable())
    if (t.version == v) return t;
  throw Error("unknown code version");
}

}  // namespace awp::perfmodel
