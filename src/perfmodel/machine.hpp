#pragma once
// Machine catalog reproducing Table 1 of the paper ("Computers used by
// model for production runs") plus the interconnect parameters the paper's
// performance model needs: average latency α, inverse bandwidth β, and
// machine time per flop τ. For Jaguar the paper gives the calibrated values
// α = 5.5e-6 s, β = 2.5e-10 s/unit, τ = 9.62e-11 s/flop (§V.A); the other
// machines carry representative values consistent with their interconnect
// generation, documented per entry.

#include <string>
#include <vector>

namespace awp::perfmodel {

struct Machine {
  std::string name;
  std::string site;
  std::string processor;
  std::string interconnect;
  double peakGflopsPerCore = 0.0;
  int coresUsed = 0;      // the "Cores used" column of Table 1
  double alpha = 0.0;     // average message latency [s]
  double beta = 0.0;      // average time per data unit [s] (1/bandwidth)
  double tau = 0.0;       // machine computation time per flop [s]
  bool numa = false;      // multi-socket NUMA node (drives the §IV.A
                          // synchronous-communication penalty)
};

// All Table 1 machines, in the paper's row order.
const std::vector<Machine>& machineCatalog();

// Lookup by name ("Jaguar", "Kraken", ...). Throws awp::Error if unknown.
const Machine& machineByName(const std::string& name);

}  // namespace awp::perfmodel
