#include "perfmodel/model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace awp::perfmodel {

ProblemSize terashakeProblem() { return {3000, 1500, 400}; }
ProblemSize shakeoutProblem() { return {6000, 3000, 800}; }
ProblemSize m8Problem() { return {20250, 10125, 2125}; }
ProblemSize bluewatersBenchmarkProblem() { return {30000, 15000, 3160}; }

namespace {
// Synchronous-model cascade: accrued latency grows superlinearly with the
// core count on NUMA machines (§IV.A). Calibrated against the paper's ~7x
// async gain at 223,074 Jaguar cores and the 28% -> 75% efficiency jump on
// 60,000 Ranger cores.
constexpr double kSyncCascadeCoeff = 6.6e-6;
constexpr double kSyncCascadeExponent = 1.7;
constexpr double kNonNumaCascadeScale = 0.02;
}  // namespace

ScalingModel::ScalingModel(Machine machine, ProblemSize problem,
                           double flopsPerPoint, double sustainedFraction)
    : machine_(std::move(machine)),
      problem_(problem),
      flopsPerPoint_(flopsPerPoint),
      sustainedFraction_(sustainedFraction) {
  AWP_CHECK(flopsPerPoint_ > 0.0 && sustainedFraction_ > 0.0 &&
            sustainedFraction_ <= 1.0);
}

double ScalingModel::speedupEq8(vcluster::Dims3 p) const {
  const double n = problem_.total();
  const double ctau = kEq8FlopsPerPoint * machine_.tau;
  const double axy = (static_cast<double>(problem_.nx) / p.x) *
                     (static_cast<double>(problem_.ny) / p.y);
  const double axz = (static_cast<double>(problem_.nx) / p.x) *
                     (static_cast<double>(problem_.nz) / p.z);
  const double ayz = (static_cast<double>(problem_.ny) / p.y) *
                     (static_cast<double>(problem_.nz) / p.z);
  const double comm =
      4.0 * (3.0 * machine_.alpha + 8.0 * machine_.beta * (axy + axz + ayz));
  return ctau * n / (ctau * n / p.total() + comm);
}

double ScalingModel::efficiencyEq8(vcluster::Dims3 p) const {
  return speedupEq8(p) / p.total();
}

double ScalingModel::syncCascadePenalty(double p) const {
  const double scale = machine_.numa ? 1.0 : kNonNumaCascadeScale;
  return 1.0 + scale * kSyncCascadeCoeff * std::pow(p, kSyncCascadeExponent);
}

TimeBreakdown ScalingModel::perStep(const VersionTraits& traits,
                                    vcluster::Dims3 p, double gammaOutput,
                                    double phiReinit) const {
  const double cores = p.total();
  const double pointsPerCore = problem_.total() / cores;

  // --- Tcomp: wall-clock compute per step ---------------------------------
  // Anchor: fully optimized (v7.2) compute rate. Versions lacking the
  // single-CPU optimizations pay the inverse of the §IV.B gains.
  double comp = flopsPerPoint_ * machine_.tau / sustainedFraction_ *
                pointsPerCore;
  if (!traits.singleCpuOpt)
    comp /= (1.0 - calib::kReciprocalGain - calib::kUnrollGain);
  if (!traits.cacheBlocking) comp /= (1.0 - calib::kCacheBlockGain);

  // --- Tcomm: Eq. (8) α-β face exchange -----------------------------------
  const double axy = (static_cast<double>(problem_.nx) / p.x) *
                     (static_cast<double>(problem_.ny) / p.y);
  const double axz = (static_cast<double>(problem_.nx) / p.x) *
                     (static_cast<double>(problem_.nz) / p.z);
  const double ayz = (static_cast<double>(problem_.ny) / p.y) *
                     (static_cast<double>(problem_.nz) / p.z);
  double bytesFactor = 8.0 * machine_.beta;
  if (traits.reducedComm) bytesFactor *= 1.0 - calib::kReducedCommBytes;
  double comm = 4.0 * (3.0 * machine_.alpha + bytesFactor * (axy + axz + ayz));
  if (!traits.asyncComm) comm *= syncCascadePenalty(cores);
  if (traits.overlap) comm *= 1.0 - calib::kOverlapHide;

  // --- Tsync: barriers (one MPI_Barrier per iteration in v7.2, more under
  // the synchronous model) -------------------------------------------------
  const double barrierCost = machine_.alpha * std::log2(std::max(2.0, cores));
  double sync = barrierCost * (traits.asyncComm ? 1.0 : 3.0);

  // --- γ·Toutput: I/O share, 49% of wall clock before aggregation tuning,
  // <2% after (§III.E). Modeled as a share of the non-I/O time. ------------
  const double ioShare =
      traits.ioTuned ? calib::kIoShareTuned : calib::kIoShareUntuned;
  const double nonIo = comp + comm + sync;
  double output = nonIo * ioShare / (1.0 - ioShare);
  // The γ knob still matters: heavier output schedules scale it.
  output *= gammaOutput / (1.0 / 20000.0);

  // --- φ·Treini: source re-initialization, "significantly smaller than the
  // other terms ... allowing it to be safely omitted" (§V.A). --------------
  const double reinit = phiReinit * 0.05 * comp;

  return TimeBreakdown{comp, comm, sync, output, reinit};
}

double ScalingModel::sustainedTflops(const VersionTraits& traits,
                                     vcluster::Dims3 p) const {
  const TimeBreakdown t = perStep(traits, p);
  // Useful flops per step are version-independent; wall clock is not.
  const double flopsPerStep = flopsPerPoint_ * problem_.total();
  return flopsPerStep / t.total() / 1e12;
}

double ScalingModel::relativeSpeedup(const VersionTraits& traits,
                                     vcluster::Dims3 pBase,
                                     vcluster::Dims3 p) const {
  const double tBase = perStep(traits, pBase).total();
  const double tP = perStep(traits, p).total();
  return tBase / tP * pBase.total();
}

}  // namespace awp::perfmodel
