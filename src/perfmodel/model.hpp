#pragma once
// The paper's analytic performance model (§V.A):
//
//   Eq. (7)  Ttot = Tcomp + Tcomm + Tsync + γ·Toutput + φ·Treini
//   Eq. (8)  T(N,1)/T(N,p) = Cτ·N / [ Cτ·N/p + 4·(3α + 8β·Axy + 8β·Axz
//                                                + 8β·Ayz) ]
//            with Axy = (NX/PX)(NY/PY), etc.
//
// plus the version-dependent factors that turn the model into the
// regenerators for Table 2 and Figs 12–14:
//   * synchronous-communication cascade penalty on NUMA machines (§IV.A),
//   * single-CPU optimization / cache blocking compute factors (§IV.B),
//   * overlap hiding (§IV.C), reduced-communication byte savings (§IV.A),
//   * I/O share before/after aggregation tuning (§III.E).
//
// Calibration: with the defaults below, the model reproduces the paper's
// anchors — ≈0.55 s/step and 220 Tflop/s sustained for M8 on 223,074 Jaguar
// cores, ≥98% parallel efficiency from Eq. (8), a ~7x wall-clock gain from
// the async redesign at 223K cores, and ~28% -> ~75% efficiency on 60K
// Ranger cores.

#include "perfmodel/machine.hpp"
#include "perfmodel/version.hpp"
#include "vcluster/cart.hpp"

namespace awp::perfmodel {

struct ProblemSize {
  std::size_t nx = 0, ny = 0, nz = 0;
  [[nodiscard]] double total() const {
    return static_cast<double>(nx) * static_cast<double>(ny) *
           static_cast<double>(nz);
  }
};

// Canonical SCEC problem sizes (§VI, Fig 14).
ProblemSize terashakeProblem();  // 3000 x 1500 x 400   (1.8e9, 200 m)
ProblemSize shakeoutProblem();   // 6000 x 3000 x 800   (14.4e9, 100 m)
ProblemSize m8Problem();         // 20250 x 10125 x 2125 (436e9, 40 m)
ProblemSize bluewatersBenchmarkProblem();  // 30000 x 15000 x 3160 (1.4e12)

struct TimeBreakdown {
  double comp = 0.0;
  double comm = 0.0;
  double sync = 0.0;
  double output = 0.0;
  double reinit = 0.0;
  [[nodiscard]] double total() const {
    return comp + comm + sync + output + reinit;
  }
};

class ScalingModel {
 public:
  // flopsPerPoint: useful flops per grid point per time step (velocity +
  // stress + attenuation updates of the 9 wavefield quantities).
  // sustainedFraction: fraction of per-core peak a stencil code achieves
  // ("approximately 10% of peak", §VIII).
  ScalingModel(Machine machine, ProblemSize problem,
               double flopsPerPoint = kDefaultFlopsPerPoint,
               double sustainedFraction = kDefaultSustainedFraction);

  // --- Eq. (8), exactly as printed (no version factors) ------------------
  double speedupEq8(vcluster::Dims3 p) const;
  double efficiencyEq8(vcluster::Dims3 p) const;

  // --- Eq. (7) breakdown for one code version at p cores -----------------
  // gammaOutput / phiReinit are the I/O operation rates of Eq. (7); the M8
  // values are 1/20000 and 1/3000 (§V.A).
  TimeBreakdown perStep(const VersionTraits& traits, vcluster::Dims3 p,
                        double gammaOutput = 1.0 / 20000.0,
                        double phiReinit = 1.0 / 3000.0) const;

  // Sustained performance in Tflop/s for a version at p cores.
  double sustainedTflops(const VersionTraits& traits,
                         vcluster::Dims3 p) const;

  // Strong-scaling speedup of a version: T(pBase) * pBase / T(p) convention
  // (relative to the smallest measured core count, as in Fig 14).
  double relativeSpeedup(const VersionTraits& traits, vcluster::Dims3 pBase,
                         vcluster::Dims3 p) const;

  [[nodiscard]] const Machine& machine() const { return machine_; }
  [[nodiscard]] const ProblemSize& problem() const { return problem_; }

  static constexpr double kDefaultFlopsPerPoint = 280.0;
  static constexpr double kDefaultSustainedFraction = 0.095;
  // Eq. (8) as printed uses the paper's effective C (which folds the
  // sustained fraction into the flop count); this value reproduces the
  // quoted 2.20e5 speedup / 98.6% efficiency on 223,074 Jaguar cores.
  static constexpr double kEq8FlopsPerPoint = 163.0;

 private:
  double syncCascadePenalty(double p) const;

  Machine machine_;
  ProblemSize problem_;
  double flopsPerPoint_;
  double sustainedFraction_;
};

}  // namespace awp::perfmodel
