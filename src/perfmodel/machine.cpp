#include "perfmodel/machine.hpp"

#include "util/error.hpp"

namespace awp::perfmodel {

const std::vector<Machine>& machineCatalog() {
  // τ is machine time per flop at peak: τ = 1 / (peak Gflops per core).
  // Jaguar's α, β, τ are the paper's calibrated values; Kraken shares the
  // XT5/SeaStar2+ fabric; the rest are representative of their class.
  static const std::vector<Machine> catalog = {
      {"DataStar", "SDSC", "1.5/1.7GHz Power4", "IBM Fat Tree", 6.8, 2048,
       8.0e-6, 7.0e-10, 1.0 / 6.8e9, false},
      {"Ranger", "TACC", "2.3GHz AMD Barcelona", "InfiniBand Fat Tree", 9.2,
       60000, 2.5e-6, 6.0e-10, 1.0 / 9.2e9, true},
      {"BGW", "IBM Watson", "700MHz PowerPC BG/L", "3D Torus", 2.8, 40960,
       3.0e-6, 2.4e-9, 1.0 / 2.8e9, false},
      {"Intrepid", "ANL", "850MHz PowerPC BG/P", "3D Torus", 3.4, 131072,
       3.5e-6, 1.5e-9, 1.0 / 3.4e9, true},
      {"Kraken", "NICS", "2.6GHz Istanbul Cray XT5", "SeaStar2+ 3D Torus",
       10.4, 98304, 5.5e-6, 2.5e-10, 1.0 / 10.4e9, true},
      {"Jaguar", "ORNL", "2.6GHz Istanbul Cray XT5", "SeaStar2+ 3D Torus",
       10.4, 223074, 5.5e-6, 2.5e-10, 9.62e-11, true},
  };
  return catalog;
}

const Machine& machineByName(const std::string& name) {
  for (const auto& m : machineCatalog())
    if (m.name == name) return m;
  throw Error("unknown machine: " + name);
}

}  // namespace awp::perfmodel
