#include "analysis/pgv.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace awp::analysis {

double distanceToTrace(double x, double y, const source::FaultTrace& trace) {
  // Sample the polyline densely enough relative to its length; exact
  // point-segment projection over the sampled vertices.
  constexpr std::size_t kSamples = 256;
  double best = std::numeric_limits<double>::max();
  source::TracePoint prev = trace.at(0.0).position;
  for (std::size_t s = 1; s <= kSamples; ++s) {
    const auto cur =
        trace.at(trace.length() * static_cast<double>(s) / kSamples)
            .position;
    const double vx = cur.x - prev.x, vy = cur.y - prev.y;
    const double len2 = vx * vx + vy * vy;
    double t = 0.0;
    if (len2 > 0.0)
      t = std::clamp(((x - prev.x) * vx + (y - prev.y) * vy) / len2, 0.0,
                     1.0);
    const double px = prev.x + t * vx, py = prev.y + t * vy;
    best = std::min(best, std::hypot(x - px, y - py));
    prev = cur;
  }
  return best;
}

std::vector<DistanceBin> pgvVsDistance(
    const std::vector<float>& pgvMap, std::size_t nx, std::size_t ny,
    double h, const source::FaultTrace& trace,
    const std::function<bool(std::size_t, std::size_t)>& sitePredicate,
    const std::vector<double>& binEdgesKm) {
  AWP_CHECK(pgvMap.size() == nx * ny);
  AWP_CHECK(binEdgesKm.size() >= 2);

  std::vector<std::vector<double>> lnValues(binEdgesKm.size() - 1);
  for (std::size_t j = 0; j < ny; ++j)
    for (std::size_t i = 0; i < nx; ++i) {
      const float v = pgvMap[i + nx * j];
      if (v <= 0.0f) continue;
      if (sitePredicate && !sitePredicate(i, j)) continue;
      const double rKm = distanceToTrace(static_cast<double>(i) * h,
                                         static_cast<double>(j) * h, trace) /
                         1000.0;
      for (std::size_t b = 0; b + 1 < binEdgesKm.size(); ++b) {
        if (rKm >= binEdgesKm[b] && rKm < binEdgesKm[b + 1]) {
          lnValues[b].push_back(std::log(static_cast<double>(v) * 100.0));
          break;
        }
      }
    }

  std::vector<DistanceBin> bins;
  for (std::size_t b = 0; b + 1 < binEdgesKm.size(); ++b) {
    DistanceBin bin;
    bin.rLoKm = binEdgesKm[b];
    bin.rHiKm = binEdgesKm[b + 1];
    bin.count = lnValues[b].size();
    if (bin.count > 0) {
      bin.medianCmS = std::exp(median(lnValues[b]));
      bin.p16CmS = std::exp(percentile(lnValues[b], 16.0));
      bin.p84CmS = std::exp(percentile(lnValues[b], 84.0));
    }
    bins.push_back(bin);
  }
  return bins;
}

MapPeak mapPeak(const std::vector<float>& map, std::size_t nx,
                std::size_t ny) {
  AWP_CHECK(map.size() == nx * ny);
  MapPeak peak;
  for (std::size_t j = 0; j < ny; ++j)
    for (std::size_t i = 0; i < nx; ++i) {
      const float v = map[i + nx * j];
      if (v > peak.value) {
        peak.value = v;
        peak.i = i;
        peak.j = j;
      }
    }
  return peak;
}

double meanWithinDistance(const std::vector<float>& map, std::size_t nx,
                          std::size_t ny, double h,
                          const source::FaultTrace& trace, double rLoKm,
                          double rHiKm) {
  AWP_CHECK(map.size() == nx * ny);
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t j = 0; j < ny; ++j)
    for (std::size_t i = 0; i < nx; ++i) {
      const double rKm = distanceToTrace(static_cast<double>(i) * h,
                                         static_cast<double>(j) * h, trace) /
                         1000.0;
      if (rKm < rLoKm || rKm >= rHiKm) continue;
      sum += map[i + nx * j];
      ++count;
    }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

}  // namespace awp::analysis
