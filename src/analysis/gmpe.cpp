#include "analysis/gmpe.hpp"

#include <cmath>

namespace awp::analysis {

double Gmpe::medianPgv(double mw, double rjbKm) const {
  const double r = std::sqrt(rjbKm * rjbKm + h * h);
  const double lnY = a1 + a2 * (mw - 6.75) +
                     (b1 + b2 * (mw - 4.5)) * std::log(r) + b3 * (r - 1.0);
  return std::exp(lnY);
}

double Gmpe::pgvAtEpsilon(double mw, double rjbKm, double epsilon) const {
  return medianPgv(mw, rjbKm) * std::exp(epsilon * sigmaLn);
}

double Gmpe::poe(double mw, double rjbKm, double pgvCmS) const {
  if (pgvCmS <= 0.0) return 1.0;
  const double z =
      (std::log(pgvCmS) - std::log(medianPgv(mw, rjbKm))) / sigmaLn;
  return 0.5 * std::erfc(z / std::sqrt(2.0));
}

Gmpe ba08Like() {
  return Gmpe{"B&A08", 4.00, 0.70, -0.8737, 0.1006, -0.00334, 2.54, 0.56};
}

Gmpe cb08Like() {
  return Gmpe{"C&B08", 4.15, 0.65, -0.9500, 0.1100, -0.00250, 4.00, 0.53};
}

}  // namespace awp::analysis
