#pragma once
// aVal: the automated verification toolkit (§III.H). "We have developed a
// multi-step process of configuring a reference problem, running a
// simulation, and comparing results against a reference solution. This
// test uses a simple least-squares (L2 norm) fit of the waveforms from
// the new simulation and the 'correct' result in the reference solution."

#include <string>
#include <vector>

#include "core/receivers.hpp"

namespace awp::analysis {

struct AcceptanceResult {
  bool pass = false;
  double worstMisfit = 0.0;
  std::string worstTrace;
  std::vector<double> perTraceMisfit;
};

// Compare candidate traces against reference traces (matched by name;
// every reference trace must be present). The misfit per trace is the
// relative L2 norm over the concatenated three components; the test
// passes if every misfit is below `tolerance`.
AcceptanceResult acceptanceTest(
    const std::vector<core::SeismogramTrace>& candidate,
    const std::vector<core::SeismogramTrace>& reference, double tolerance);

// Peak ground velocity of one trace [m/s]: max over time of the 3-component
// magnitude (or horizontal magnitude if `horizontalOnly`).
double tracePgv(const core::SeismogramTrace& t, bool horizontalOnly = false);

}  // namespace awp::analysis
