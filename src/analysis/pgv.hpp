#pragma once
// PGV map analysis: distance-to-fault computation, rock-site selection,
// and the distance-binned median / ±1σ statistics of Fig 23, plus simple
// map reductions used by the TeraShake/ShakeOut/M8 science benches.

#include <functional>
#include <vector>

#include "source/trace.hpp"

namespace awp::analysis {

// Minimum distance [m] from (x, y) to the fault trace polyline.
double distanceToTrace(double x, double y, const source::FaultTrace& trace);

struct DistanceBin {
  double rLoKm = 0.0, rHiKm = 0.0;
  double medianCmS = 0.0;   // of ln-PGV (geometric median)
  double p16CmS = 0.0, p84CmS = 0.0;
  std::size_t count = 0;
};

// Bin a surface PGV map [m/s] (nx-by-ny, x fastest, spacing h) by distance
// to the trace. `sitePredicate(i, j)` selects which cells participate
// (e.g. the Fig 23 rock-site mask); pgv values of zero are skipped.
// Returns geometric median and 16/84 percentiles per bin, in cm/s.
std::vector<DistanceBin> pgvVsDistance(
    const std::vector<float>& pgvMap, std::size_t nx, std::size_t ny,
    double h, const source::FaultTrace& trace,
    const std::function<bool(std::size_t, std::size_t)>& sitePredicate,
    const std::vector<double>& binEdgesKm);

// Peak value of a map and its location.
struct MapPeak {
  float value = 0.0f;
  std::size_t i = 0, j = 0;
};
MapPeak mapPeak(const std::vector<float>& map, std::size_t nx,
                std::size_t ny);

// Mean of the map over cells within [rLoKm, rHiKm] of the trace.
double meanWithinDistance(const std::vector<float>& map, std::size_t nx,
                          std::size_t ny, double h,
                          const source::FaultTrace& trace, double rLoKm,
                          double rHiKm);

}  // namespace awp::analysis
