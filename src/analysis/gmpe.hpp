#pragma once
// Next Generation Attenuation (NGA) ground-motion prediction for PGV,
// used to rank simulated ground motions by probability of exceedance
// (Fig 23). The paper compares against Boore & Atkinson (2008) and
// Campbell & Bozorgnia (2008).
//
// Substitution note: we implement the BA08 functional form
//   ln Y = a1 + a2 (M − 6.75) + [b1 + b2 (M − 4.5)] ln(R/Rref) + b3 (R − Rref),
//   R = sqrt(Rjb² + h²)
// with coefficient sets labeled "BA08-like" / "CB08-like" — calibrated to
// the published relations' magnitude-8 rock-site behaviour (tens of cm/s
// within 10 km decaying to a few cm/s at 200 km) rather than copied
// digit-for-digit. Fig 23's reproduction only needs the median curves and
// the 16%/84% lognormal bands.

#include <string>

namespace awp::analysis {

struct Gmpe {
  std::string name;
  double a1, a2;       // magnitude scaling
  double b1, b2, b3;   // distance scaling
  double h;            // pseudo-depth [km]
  double sigmaLn;      // lognormal standard deviation

  // Median PGV [cm/s] for moment magnitude mw at Joyner-Boore distance
  // rjb [km] (geometric-mean horizontal, rock site).
  [[nodiscard]] double medianPgv(double mw, double rjbKm) const;
  // PGV at a given number of standard deviations from the median.
  [[nodiscard]] double pgvAtEpsilon(double mw, double rjbKm,
                                    double epsilon) const;
  // Probability of exceedance of `pgvCmS` under the lognormal model.
  [[nodiscard]] double poe(double mw, double rjbKm, double pgvCmS) const;
};

Gmpe ba08Like();
Gmpe cb08Like();

}  // namespace awp::analysis
