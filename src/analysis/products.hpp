#pragma once
// dPDA: derived data analysis products (§III.I). The paper's workflow
// derives analysis/visualization products from the raw simulation
// collections; here: grayscale PGM images of surface maps (the PGV maps
// of Figs 3/15/17/21 as actual image files) and a reader for the solver's
// aggregated surface-output files that reconstructs velocity-magnitude
// snapshots (Fig 22-style wavefield frames).

#include <cstdint>
#include <string>
#include <vector>

namespace awp::analysis {

// Write a map as an 8-bit binary PGM (values gamma-scaled to the map's
// max; zero maps to black). Returns the peak value used for scaling.
double writePgm(const std::vector<float>& map, std::size_t nx,
                std::size_t ny, const std::string& path,
                double gamma = 0.5);

// Layout description of a surface-output file written by
// WaveSolver::attachSurfaceOutput with a RANK-BLOCKED record per sampled
// step (see solver.cpp): per step, each surface rank contributes
// 3 floats (u, v, w) per decimated point, rank blocks in rank order.
struct SurfaceLayout {
  struct RankBlock {
    std::uint64_t offsetFloats = 0;  // within one step record
    std::size_t nx = 0, ny = 0;      // decimated points
    std::size_t x0 = 0, y0 = 0;      // decimated global origin
  };
  std::vector<RankBlock> blocks;
  std::uint64_t stepFloats = 0;
  std::size_t gnx = 0, gny = 0;  // decimated global dims

  [[nodiscard]] std::size_t sampleCount(std::uint64_t fileBytes) const {
    return stepFloats == 0
               ? 0
               : static_cast<std::size_t>(fileBytes / sizeof(float) /
                                          stepFloats);
  }
};

// Velocity-magnitude snapshot (gnx * gny, x fastest) of one sampled step.
std::vector<float> readSurfaceSnapshot(const std::string& path,
                                       const SurfaceLayout& layout,
                                       std::size_t sample);

}  // namespace awp::analysis

#include "grid/staggered_grid.hpp"
#include "vcluster/cart.hpp"

namespace awp::analysis {

// Reconstruct the layout WaveSolver::attachSurfaceOutput used, from the
// same deterministic inputs (topology, global dims, decimation).
SurfaceLayout surfaceLayoutFor(const vcluster::CartTopology& topo,
                               const grid::GridDims& global,
                               int spatialDecimation);

}  // namespace awp::analysis
