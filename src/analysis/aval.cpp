#include "analysis/aval.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace awp::analysis {

AcceptanceResult acceptanceTest(
    const std::vector<core::SeismogramTrace>& candidate,
    const std::vector<core::SeismogramTrace>& reference, double tolerance) {
  AcceptanceResult result;
  result.pass = true;

  for (const auto& ref : reference) {
    const core::SeismogramTrace* cand = nullptr;
    for (const auto& c : candidate)
      if (c.name == ref.name) {
        cand = &c;
        break;
      }
    AWP_CHECK_MSG(cand != nullptr,
                  "candidate is missing reference trace '" + ref.name + "'");

    auto concat = [](const core::SeismogramTrace& t) {
      std::vector<double> all;
      all.reserve(3 * t.u.size());
      for (float v : t.u) all.push_back(v);
      for (float v : t.v) all.push_back(v);
      for (float v : t.w) all.push_back(v);
      return all;
    };
    const auto a = concat(*cand);
    const auto b = concat(ref);
    AWP_CHECK_MSG(a.size() == b.size(),
                  "trace length mismatch for '" + ref.name + "'");
    const double misfit = l2Misfit(a, b);
    result.perTraceMisfit.push_back(misfit);
    if (misfit > result.worstMisfit) {
      result.worstMisfit = misfit;
      result.worstTrace = ref.name;
    }
    if (misfit > tolerance) result.pass = false;
  }
  return result;
}

double tracePgv(const core::SeismogramTrace& t, bool horizontalOnly) {
  double peak = 0.0;
  for (std::size_t n = 0; n < t.u.size(); ++n) {
    double v2 = static_cast<double>(t.u[n]) * t.u[n] +
                static_cast<double>(t.v[n]) * t.v[n];
    if (!horizontalOnly) v2 += static_cast<double>(t.w[n]) * t.w[n];
    peak = std::max(peak, v2);
  }
  return std::sqrt(peak);
}

}  // namespace awp::analysis
