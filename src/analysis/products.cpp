#include "analysis/products.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "io/shared_file.hpp"
#include "mesh/partitioner.hpp"
#include "util/error.hpp"

namespace awp::analysis {

SurfaceLayout surfaceLayoutFor(const vcluster::CartTopology& topo,
                               const grid::GridDims& global,
                               int spatialDecimation) {
  AWP_CHECK(spatialDecimation >= 1);
  const auto dec = static_cast<std::size_t>(spatialDecimation);
  auto decFirst = [&](std::size_t begin) { return (begin + dec - 1) / dec; };
  auto decCount = [&](vcluster::Range r) {
    return (r.end + dec - 1) / dec - decFirst(r.begin);
  };

  SurfaceLayout layout;
  layout.gnx = (global.nx + dec - 1) / dec;
  layout.gny = (global.ny + dec - 1) / dec;
  const mesh::MeshSpec spec{global.nx, global.ny, global.nz, 1.0, 0, 0};
  for (int r = 0; r < topo.size(); ++r) {
    const auto sub = mesh::subdomainFor(topo, spec, r);
    if (sub.z.end != global.nz) continue;  // not a surface rank
    SurfaceLayout::RankBlock block;
    block.offsetFloats = layout.stepFloats;
    block.nx = decCount(sub.x);
    block.ny = decCount(sub.y);
    block.x0 = decFirst(sub.x.begin);
    block.y0 = decFirst(sub.y.begin);
    layout.blocks.push_back(block);
    layout.stepFloats += 3ULL * block.nx * block.ny;
  }
  return layout;
}

double writePgm(const std::vector<float>& map, std::size_t nx,
                std::size_t ny, const std::string& path, double gamma) {
  AWP_CHECK(map.size() == nx * ny);
  AWP_CHECK(gamma > 0.0);
  float peak = 0.0f;
  for (float v : map) peak = std::max(peak, v);

  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write '" + path + "'");
  out << "P5\n" << nx << " " << ny << "\n255\n";
  std::vector<unsigned char> row(nx);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const double f =
          peak > 0.0f ? map[i + nx * j] / static_cast<double>(peak) : 0.0;
      row[i] = static_cast<unsigned char>(
          std::lround(255.0 * std::pow(std::clamp(f, 0.0, 1.0), gamma)));
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  return peak;
}

std::vector<float> readSurfaceSnapshot(const std::string& path,
                                       const SurfaceLayout& layout,
                                       std::size_t sample) {
  io::SharedFile file(path, io::SharedFile::Mode::Read);
  AWP_CHECK_MSG(sample < layout.sampleCount(file.size()),
                "sample index beyond the end of the surface file");

  std::vector<float> snapshot(layout.gnx * layout.gny, 0.0f);
  for (const auto& block : layout.blocks) {
    std::vector<float> data(3 * block.nx * block.ny);
    const std::uint64_t offsetBytes =
        (static_cast<std::uint64_t>(sample) * layout.stepFloats +
         block.offsetFloats) *
        sizeof(float);
    file.readAt(offsetBytes, std::span<float>(data));
    std::size_t at = 0;
    for (std::size_t j = 0; j < block.ny; ++j)
      for (std::size_t i = 0; i < block.nx; ++i) {
        const float u = data[at++];
        const float v = data[at++];
        const float w = data[at++];
        snapshot[(block.x0 + i) + layout.gnx * (block.y0 + j)] =
            std::sqrt(u * u + v * v + w * w);
      }
  }
  return snapshot;
}

}  // namespace awp::analysis
