#pragma once
// ProductServer: the hazard-product serving tier. Sits between the
// scenario service (which reports surface window flushes and scenario
// completions through sched::ProductPublisher) and read-side clients
// (exceedance/max-over-catalog queries, extent subscriptions).
//
// Incremental model: each wave scenario's PGV-H map is folded sample
// window by sample window from the step-indexed surface file as ranks
// flush, and published as fixed-size content-addressed tiles at
// step-derived versions (version == number of surface samples folded).
// A mid-run scenario therefore already serves a partial map; queries
// carry per-scenario staleness metadata saying exactly which window each
// answer includes.
//
// Version lattice / idempotence: versions only grow, a publish at an
// already-reached version is absorbed (TileStore), and subscribers track
// a per-tile delivered version so a retried attempt, fabric replay, or
// reconcile pass can never re-notify or regress what a client saw.
//
// Rollback taint: a flush report that rewrote samples below the folded
// prefix (dt-tightened retry replaying history with different values)
// taints the run — a max-fold cannot unfold — so partial publishing
// suspends until completion, when the canonical product bytes
// (derivePgvh over the final surface file) replace the accumulator and
// every tile is published at the final version. Within-attempt health
// rollbacks replay bit-identical windows, so taint is a safe
// overapproximation: the completion publish converges every case.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/runtime_config.hpp"
#include "sched/artifact_cache.hpp"
#include "sched/publish.hpp"
#include "serve/layout.hpp"
#include "serve/store.hpp"
#include "serve/tile.hpp"
#include "util/guarded.hpp"

namespace awp::serve {

struct ServeConfig {
  int tileEdge = 16;        // tile size in surface points (square)
  int windowSamples = 4;    // min new samples between partial publishes
  bool partialPublish = true;  // fold + publish mid-run (off: completion only)
  int reconcileEveryTicks = 50;  // broker pump ticks between reconciles
  // Default publish origin for a standalone server (fault-injection rank
  // of the serve_* sites). Fabric brokers pass their broker id per call.
  int originId = 0;

  static ServeConfig fromRuntime(const core::RuntimeConfig& rc);
};

// One tile-version advance, as delivered to subscribers.
struct TileDelta {
  std::string digest;        // scenario spec hash (hex)
  Field field = Field::PgvH;
  int tx = 0, ty = 0;
  std::uint64_t version = 0;  // samples folded into this tile content
  bool complete = false;      // version is the scenario's final one
};

// Invoked under the server's delivery lock, in publish order, with
// strictly increasing versions per (digest, tile). The callback may issue
// queries and read partial maps, but must not subscribe/unsubscribe.
using SubscriptionCallback =
    std::function<void(const std::vector<TileDelta>&)>;

// Which window of a scenario a query answer includes.
struct ScenarioStaleness {
  std::string digest;
  bool present = false;   // at least one covered tile is published
  bool complete = false;  // scenario settled; tiles are canonical
  // Min published version over the covered tiles (0 when any covered
  // tile is still unpublished): every covered point reflects at least
  // this many folded samples.
  std::uint64_t version = 0;
  std::uint64_t totalSamples = 0;  // 0 until completion
};

struct ExceedanceQuery {
  Field field = Field::PgvH;
  Extent extent;                     // half-open surface-point rect
  std::vector<std::string> digests;  // the scenario catalog to aggregate
  float threshold = 0.0f;            // exceedance level [m/s]
};

struct ExceedanceResult {
  std::size_t width = 0, height = 0;  // extent dims (row-major arrays)
  // Per point: how many catalog scenarios exceed the threshold, and the
  // max value over the catalog. Streamed tile-by-tile from the index —
  // whole maps are never materialized.
  std::vector<std::uint32_t> exceedCount;
  std::vector<float> maxOver;
  std::uint64_t tilesScanned = 0;
  std::vector<ScenarioStaleness> scenarios;
};

// Snapshot of one scenario's folded (or canonical) row-major map.
struct PartialMap {
  std::size_t nx = 0, ny = 0;
  std::uint64_t version = 0;  // samples folded
  bool complete = false;
  bool tainted = false;       // partial publishing suspended until completion
  std::vector<float> values;  // nx*ny row-major
};

struct ServerStats {
  std::uint64_t windowPublishes = 0;      // partial windows published
  std::uint64_t completionPublishes = 0;  // completion publish passes
  std::uint64_t publishDrops = 0;         // injected serve_publish_drop hits
  std::uint64_t notifies = 0;             // delta batches delivered
  std::uint64_t queries = 0;
  std::uint64_t reconciles = 0;
  std::uint64_t taintedRuns = 0;
};

class ProductServer final : public sched::ProductPublisher {
 public:
  // `cache` is the chunk storage tier (a fabric passes its shared cache
  // so overlapping extents dedupe across brokers); must outlive the
  // server.
  ProductServer(sched::ArtifactCache* cache, ServeConfig config);

  // --- sched::ProductPublisher (called by scenario services) -----------
  void onWindowFlush(const sched::SurfaceRunInfo& info, int origin,
                     int rank, std::uint64_t durableSamples,
                     std::uint64_t lowestRewritten) override;
  void onScenarioComplete(const sched::SurfaceRunInfo& info, int origin,
                          const sched::ScenarioProducts& products) override;

  // --- read path --------------------------------------------------------
  ExceedanceResult exceedance(const ExceedanceQuery& query);
  [[nodiscard]] std::optional<PartialMap> partialMap(
      const std::string& digest) const;

  // --- subscriptions ----------------------------------------------------
  std::uint64_t subscribe(Field field, Extent extent,
                          SubscriptionCallback callback);
  void unsubscribe(std::uint64_t id);

  // Anti-entropy: re-publish any completed run whose tiles lag the store
  // (a dropped completion publish) and re-deliver any store version a
  // subscriber has not seen (a dropped notify). Broker pumps call this on
  // a tick cadence; it is cheap when nothing lags.
  void reconcile();

  [[nodiscard]] TileStore& store() { return store_; }
  [[nodiscard]] const ServeConfig& config() const { return config_; }
  [[nodiscard]] ServerStats stats() const;

 private:
  struct RunState {
    sched::ScenarioSpec spec;
    std::array<std::uint8_t, 16> digestRaw{};
    std::string digestHex;
    std::string surfacePath;  // active owner's surface file (handoffs switch it)
    std::unique_ptr<SurfaceLayout> layout;
    std::map<int, std::uint64_t> durableByRank;
    std::uint64_t folded = 0;      // samples folded into accum
    std::uint64_t windowMark = 0;  // folded count at last publish attempt
    std::vector<float> accum;      // row-major nx*ny partial PGV-H
    bool tainted = false;
    bool complete = false;
    std::uint64_t totalSamples = 0;
  };

  struct Subscription {
    Field field = Field::PgvH;
    Extent extent;
    SubscriptionCallback callback;
    // Last delivered version per (digest, tx, ty): the idempotence fence.
    std::map<std::tuple<std::string, int, int>, std::uint64_t> delivered;
  };

  RunState& stateForLocked(const sched::SurfaceRunInfo& info)
      AWP_REQUIRES(stateMu_);
  // Read and fold samples [state.folded, upTo) from the surface file.
  // Returns false (without advancing) when the file cannot provide the
  // range yet — the next flush retries.
  bool foldRangeLocked(RunState& state, std::uint64_t upTo)
      AWP_REQUIRES(stateMu_);
  // Publish tiles whose content differs from their stored chunk, at
  // `version`; returns the advanced deltas. forceAll publishes every tile
  // (the completion/reconcile canonical pass).
  std::vector<TileDelta> publishTilesLocked(RunState& state,
                                            std::uint64_t version,
                                            bool forceAll, bool complete)
      AWP_REQUIRES(stateMu_);
  // Deliver deltas to matching subscribers (call WITHOUT stateMu_ held).
  void deliver(int origin, const std::vector<TileDelta>& deltas);
  void deliverLocked(const std::vector<TileDelta>& deltas)
      AWP_REQUIRES(deliverMu_);

  ServeConfig config_;
  TileStore store_;

  mutable std::mutex stateMu_;
  // by digest hex
  std::map<std::string, std::unique_ptr<RunState>> runs_
      AWP_GUARDED_BY(stateMu_);

  mutable std::mutex deliverMu_;
  std::map<std::uint64_t, Subscription> subs_ AWP_GUARDED_BY(deliverMu_);
  std::uint64_t nextSubId_ AWP_GUARDED_BY(deliverMu_) = 1;

  mutable std::mutex statsMu_;
  ServerStats stats_ AWP_GUARDED_BY(statsMu_);
};

}  // namespace awp::serve
