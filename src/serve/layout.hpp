#pragma once
// SurfaceLayout: the serving tier's replica of the solver's surface-file
// record layout. WaveSolver::attachSurfaceOutput writes each sampled step
// as one global record of 3 floats (u, v, w) per surface point, laid out
// in rank-blocked segments ordered by rank id; within a rank's segment
// points run row-major with the global j index outer and i inner (see
// core/solver.cpp observationPhase). The layout is a pure function of
// (nx, ny, nz, nranks) — both ends compute it independently from the
// spec, exactly like the paper's explicit-displacement file views
// (§III.E), so the reader needs no metadata handshake with the writer.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace awp::serve {

// One surface rank's contiguous segment of a sample record.
struct SurfaceSegment {
  int rank = -1;
  std::uint64_t offsetFloats = 0;  // displacement within one record
  std::size_t x0 = 0, y0 = 0;      // global origin of the rank's patch
  std::size_t lnx = 0, lny = 0;    // patch size in surface points
};

class SurfaceLayout {
 public:
  // Mirrors the decomposition the scenario service runs wave jobs with:
  // CartTopology::balancedDims(nranks, nx, ny, nz), spatial decimation 1.
  SurfaceLayout(std::size_t nx, std::size_t ny, std::size_t nz, int nranks);

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  // Floats per sample record across all surface ranks (3 per point).
  [[nodiscard]] std::uint64_t stepFloats() const { return stepFloats_; }
  [[nodiscard]] const std::vector<SurfaceSegment>& segments() const {
    return segments_;
  }
  // Ranks that contribute to the record (sub.z.end == nz), ascending.
  [[nodiscard]] const std::vector<int>& surfaceRanks() const {
    return surfaceRanks_;
  }

  // Fold one sample record (stepFloats() floats, record order) into a
  // row-major nx*ny field, taking the pointwise max of the horizontal
  // magnitude sqrt(u^2 + v^2). Float-exact match of the product path's
  // derivePgvh fold: max is order-independent, so folding sample-by-
  // sample here equals the post-hoc full-map derivation bit-for-bit.
  void foldSampleMax(const float* record, float* field) const;

  // Scatter a per-record-position scalar array (one float per surface
  // point in record order — the pgvh.bin product layout) into a row-major
  // nx*ny field.
  void recordToRowMajor(const float* recordScalars, float* field) const;

 private:
  std::size_t nx_, ny_;
  std::uint64_t stepFloats_ = 0;
  std::vector<SurfaceSegment> segments_;
  std::vector<int> surfaceRanks_;
};

}  // namespace awp::serve
