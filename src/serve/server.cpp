#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <limits>
#include <thread>
#include <tuple>
#include <utility>

#include "fault/injector.hpp"
#include "io/aggregated_writer.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/taxonomy.hpp"
#include "util/error.hpp"
#include "util/md5.hpp"
#include "util/retry.hpp"

namespace awp::serve {

namespace {

// Completion publishes retry on injected drops: a settle must leave the
// store canonical whenever the drop burst is shorter than the attempts.
constexpr util::RetryPolicy kPublishRetry{
    /*maxAttempts=*/4, /*baseDelaySeconds=*/0.0, /*backoffFactor=*/2.0,
    /*maxDelaySeconds=*/0.01, /*jitterFraction=*/0.25, /*seed=*/0x5e27eULL};

// Tiles covering `extent` for an nx*ny field, in (ty, tx) row order.
template <typename Fn>
void forEachTile(const Extent& extent, std::size_t nx, std::size_t ny,
                 int edge, Fn&& fn) {
  if (extent.empty()) return;
  const std::size_t x1 = std::min<std::size_t>(extent.x1, nx);
  const std::size_t y1 = std::min<std::size_t>(extent.y1, ny);
  if (extent.x0 >= x1 || extent.y0 >= y1) return;
  const int tx0 = static_cast<int>(extent.x0) / edge;
  const int ty0 = static_cast<int>(extent.y0) / edge;
  const int tx1 = static_cast<int>(x1 - 1) / edge;
  const int ty1 = static_cast<int>(y1 - 1) / edge;
  for (int ty = ty0; ty <= ty1; ++ty)
    for (int tx = tx0; tx <= tx1; ++tx) fn(tx, ty);
}

// Does a tile's (unclamped) rect overlap a subscription extent?
bool tileTouches(int tx, int ty, int edge, const Extent& extent) {
  Extent tile;
  tile.x0 = static_cast<std::size_t>(tx) * edge;
  tile.y0 = static_cast<std::size_t>(ty) * edge;
  tile.x1 = tile.x0 + edge;
  tile.y1 = tile.y0 + edge;
  return tile.overlaps(extent);
}

}  // namespace

ServeConfig ServeConfig::fromRuntime(const core::RuntimeConfig& rc) {
  ServeConfig cfg;
  cfg.tileEdge = rc.serve.tileEdge;
  cfg.windowSamples = rc.serve.windowSamples;
  cfg.partialPublish = rc.serve.partialPublish;
  cfg.reconcileEveryTicks = rc.serve.reconcileEveryTicks;
  return cfg;
}

ProductServer::ProductServer(sched::ArtifactCache* cache, ServeConfig config)
    : config_(config), store_(cache, config.tileEdge) {
  AWP_CHECK_MSG(config_.windowSamples >= 1,
                "serve: window must be >= 1 sample");
}

ProductServer::RunState& ProductServer::stateForLocked(
    const sched::SurfaceRunInfo& info) {
  auto it = runs_.find(info.specHash);
  if (it == runs_.end()) {
    auto state = std::make_unique<RunState>();
    state->spec = info.spec;
    state->digestHex = info.specHash;
    state->digestRaw = digestFromHex(info.specHash);
    state->layout = std::make_unique<SurfaceLayout>(
        info.spec.dims.nx, info.spec.dims.ny, info.spec.dims.nz,
        info.spec.nranks);
    state->accum.assign(state->layout->nx() * state->layout->ny(), 0.0f);
    it = runs_.emplace(info.specHash, std::move(state)).first;
  }
  if (!info.surfacePath.empty()) it->second->surfacePath = info.surfacePath;
  return *it->second;
}

bool ProductServer::foldRangeLocked(RunState& state, std::uint64_t upTo) {
  if (upTo <= state.folded) return true;
  const std::uint64_t stepFloats = state.layout->stepFloats();
  const std::uint64_t stepBytes = stepFloats * sizeof(float);
  // Plain ifstream on purpose: the serving tier must not consume
  // sharedfile.read fault-injection occurrences, or chaos plans aimed at
  // the solver's I/O would shift under it.
  std::ifstream in(state.surfacePath, std::ios::binary);
  if (!in) return false;
  in.seekg(static_cast<std::streamoff>(state.folded * stepBytes));
  std::vector<float> record(stepFloats);
  for (std::uint64_t s = state.folded; s < upTo; ++s) {
    in.read(reinterpret_cast<char*>(record.data()),
            static_cast<std::streamsize>(stepBytes));
    if (in.gcount() != static_cast<std::streamsize>(stepBytes))
      return false;  // durable range not visible yet; retry on next flush
    state.layout->foldSampleMax(record.data(), state.accum.data());
    state.folded = s + 1;
  }
  return true;
}

std::vector<TileDelta> ProductServer::publishTilesLocked(
    RunState& state, std::uint64_t version, bool forceAll, bool complete) {
  std::vector<TileDelta> deltas;
  const std::size_t nx = state.layout->nx();
  const std::size_t ny = state.layout->ny();
  const int edge = store_.tileEdge();
  Extent all;
  all.x0 = 0;
  all.y0 = 0;
  all.x1 = nx;
  all.y1 = ny;
  std::vector<float> payload;
  forEachTile(all, nx, ny, edge, [&](int tx, int ty) {
    TileKey key;
    key.digest = state.digestRaw;
    key.field = static_cast<std::uint16_t>(Field::PgvH);
    key.tx = static_cast<std::uint16_t>(tx);
    key.ty = static_cast<std::uint16_t>(ty);
    const Extent ext = tileExtent(key, edge, nx, ny);
    payload.resize(ext.width() * ext.height());
    for (std::size_t y = ext.y0; y < ext.y1; ++y)
      std::memcpy(payload.data() + (y - ext.y0) * ext.width(),
                  state.accum.data() + ext.x0 + nx * y,
                  ext.width() * sizeof(float));
    if (!forceAll) {
      // Skip tiles whose stored content already matches: a window that
      // changed nothing in this extent publishes nothing, and a window
      // whose publish was dropped converges as soon as content diverges.
      TileRecord rec;
      if (store_.lookup(key, &rec) &&
          rec.payloadFloats == payload.size()) {
        const auto md5 =
            Md5::hash(payload.data(), payload.size() * sizeof(float));
        if (md5 == rec.chunkMd5) return;
      }
    }
    const PublishOutcome out =
        store_.publish(key, version, payload.data(), payload.size());
    if (out.advanced)
      deltas.push_back(TileDelta{state.digestHex, Field::PgvH, tx, ty,
                                 version, complete});
  });
  return deltas;
}

void ProductServer::onWindowFlush(const sched::SurfaceRunInfo& info,
                                  int origin, int rank,
                                  std::uint64_t durableSamples,
                                  std::uint64_t lowestRewritten) {
  // Runs on a solver rank thread, which owns a telemetry slot — the one
  // serve path where spans are safe.
  telemetry::ScopedSpan span(telemetry::Phase::ServePublish);
  std::vector<TileDelta> deltas;
  {
    std::lock_guard<std::mutex> lock(stateMu_);
    RunState& state = stateForLocked(info);
    if (state.complete) return;
    if (lowestRewritten != io::kNoRewrite &&
        lowestRewritten < state.folded && !state.tainted) {
      // History below the folded prefix changed (dt-tightened retry): a
      // max-fold cannot unfold, so suspend partials until completion.
      state.tainted = true;
      std::lock_guard<std::mutex> slock(statsMu_);
      ++stats_.taintedRuns;
    }
    auto& durable = state.durableByRank[rank];
    if (durableSamples > durable) durable = durableSamples;
    if (!config_.partialPublish || state.tainted) return;
    // The partial map is only correct up to the slowest surface rank's
    // durable prefix.
    std::uint64_t v = std::numeric_limits<std::uint64_t>::max();
    for (const int r : state.layout->surfaceRanks()) {
      const auto it = state.durableByRank.find(r);
      v = std::min(v, it == state.durableByRank.end() ? 0 : it->second);
    }
    if (v == std::numeric_limits<std::uint64_t>::max() ||
        v < state.windowMark + static_cast<std::uint64_t>(config_.windowSamples))
      return;
    if (!foldRangeLocked(state, v)) return;
    state.windowMark = v;
    if (fault::injectionEnabled()) {
      if (const auto act =
              fault::activeInjector()->check("serve_publish_drop", origin);
          act.has_value() && act->kind == fault::FaultKind::MessageDrop) {
        telemetry::count(telemetry::Counter::ServePublishDrops);
        std::lock_guard<std::mutex> slock(statsMu_);
        ++stats_.publishDrops;
        return;  // window lost; content comparison converges it later
      }
    }
    deltas = publishTilesLocked(state, v, /*forceAll=*/false,
                                /*complete=*/false);
    {
      std::lock_guard<std::mutex> slock(statsMu_);
      ++stats_.windowPublishes;
    }
  }
  if (!deltas.empty()) deliver(origin, deltas);
}

void ProductServer::onScenarioComplete(const sched::SurfaceRunInfo& info,
                                       int origin,
                                       const sched::ScenarioProducts& products) {
  const sched::ArtifactBlob* pgvh = products.find("pgvh.bin");
  if (pgvh == nullptr) return;  // rupture kinds carry no surface product
  std::vector<TileDelta> deltas;
  {
    std::lock_guard<std::mutex> lock(stateMu_);
    RunState& state = stateForLocked(info);
    const std::uint64_t points = state.layout->stepFloats() / 3;
    if (pgvh->bytes.size() != points * sizeof(float)) return;
    if (!state.complete) {
      // The canonical product replaces whatever was folded: handles taint,
      // dropped windows, and handoff re-runs in one deterministic step.
      state.layout->recordToRowMajor(
          reinterpret_cast<const float*>(pgvh->bytes.data()),
          state.accum.data());
      const sched::ArtifactBlob* surface = products.find("surface.bin");
      const std::uint64_t stepBytes =
          state.layout->stepFloats() * sizeof(float);
      state.totalSamples =
          surface != nullptr && stepBytes > 0
              ? surface->bytes.size() / stepBytes
              : state.folded;
      if (state.totalSamples == 0) state.totalSamples = 1;
      state.folded = state.totalSamples;
      state.complete = true;
      state.tainted = false;
    }
    try {
      util::retryCall(kPublishRetry, "serve.publish", [&] {
        if (fault::injectionEnabled()) {
          if (const auto act = fault::activeInjector()->check(
                  "serve_publish_drop", origin);
              act.has_value() &&
              act->kind == fault::FaultKind::MessageDrop) {
            telemetry::count(telemetry::Counter::ServePublishDrops);
            std::lock_guard<std::mutex> slock(statsMu_);
            ++stats_.publishDrops;
            throw TransientError("serve: completion publish dropped");
          }
        }
        deltas = publishTilesLocked(state, state.totalSamples,
                                    /*forceAll=*/true, /*complete=*/true);
      });
    } catch (const TransientError&) {
      // Retries exhausted under a sustained drop burst: the run state is
      // canonical, so the next reconcile() republishes and converges.
      deltas.clear();
    }
    std::lock_guard<std::mutex> slock(statsMu_);
    ++stats_.completionPublishes;
  }
  if (!deltas.empty()) deliver(origin, deltas);
}

ExceedanceResult ProductServer::exceedance(const ExceedanceQuery& query) {
  telemetry::count(telemetry::Counter::ServeQueries);
  {
    std::lock_guard<std::mutex> slock(statsMu_);
    ++stats_.queries;
  }
  ExceedanceResult res;
  res.width = query.extent.width();
  res.height = query.extent.height();
  res.exceedCount.assign(res.width * res.height, 0);
  res.maxOver.assign(res.width * res.height, 0.0f);
  if (res.width == 0 || res.height == 0) return res;

  struct RunSnap {
    bool known = false;
    std::array<std::uint8_t, 16> digestRaw{};
    std::size_t nx = 0, ny = 0;
    bool complete = false;
    std::uint64_t totalSamples = 0;
  };
  std::vector<RunSnap> snaps(query.digests.size());
  {
    std::lock_guard<std::mutex> lock(stateMu_);
    for (std::size_t i = 0; i < query.digests.size(); ++i) {
      const auto it = runs_.find(query.digests[i]);
      if (it == runs_.end()) continue;
      snaps[i].known = true;
      snaps[i].digestRaw = it->second->digestRaw;
      snaps[i].nx = it->second->layout->nx();
      snaps[i].ny = it->second->layout->ny();
      snaps[i].complete = it->second->complete;
      snaps[i].totalSamples = it->second->totalSamples;
    }
  }

  const int edge = store_.tileEdge();
  for (std::size_t i = 0; i < query.digests.size(); ++i) {
    ScenarioStaleness st;
    st.digest = query.digests[i];
    const RunSnap& snap = snaps[i];
    if (!snap.known) {
      res.scenarios.push_back(st);
      continue;
    }
    st.complete = snap.complete;
    st.totalSamples = snap.totalSamples;
    std::uint64_t minVersion = std::numeric_limits<std::uint64_t>::max();
    bool anyMissing = false;
    // Stream tile-by-tile over the covered extent; a whole map is never
    // materialized, so a catalog query costs O(extent), not O(nx*ny).
    forEachTile(query.extent, snap.nx, snap.ny, edge, [&](int tx, int ty) {
      TileKey key;
      key.digest = snap.digestRaw;
      key.field = static_cast<std::uint16_t>(query.field);
      key.tx = static_cast<std::uint16_t>(tx);
      key.ty = static_cast<std::uint16_t>(ty);
      TileRecord rec;
      if (!store_.lookup(key, &rec)) {
        anyMissing = true;
        return;
      }
      const auto payload = store_.load(key);
      if (!payload.has_value()) {
        anyMissing = true;
        return;
      }
      ++res.tilesScanned;
      telemetry::count(telemetry::Counter::ServeTilesScanned);
      st.present = true;
      minVersion = std::min(minVersion, rec.version);
      const Extent ext = tileExtent(key, edge, snap.nx, snap.ny);
      const std::size_t y0 = std::max(ext.y0, query.extent.y0);
      const std::size_t y1 = std::min(ext.y1, query.extent.y1);
      const std::size_t x0 = std::max(ext.x0, query.extent.x0);
      const std::size_t x1 = std::min(ext.x1, query.extent.x1);
      for (std::size_t y = y0; y < y1; ++y)
        for (std::size_t x = x0; x < x1; ++x) {
          const float value =
              (*payload)[(x - ext.x0) + ext.width() * (y - ext.y0)];
          const std::size_t at =
              (x - query.extent.x0) + res.width * (y - query.extent.y0);
          if (value > res.maxOver[at]) res.maxOver[at] = value;
          if (value > query.threshold) ++res.exceedCount[at];
        }
    });
    st.version = (st.present && !anyMissing &&
                  minVersion != std::numeric_limits<std::uint64_t>::max())
                     ? minVersion
                     : 0;
    res.scenarios.push_back(st);
  }
  return res;
}

std::optional<PartialMap> ProductServer::partialMap(
    const std::string& digest) const {
  std::lock_guard<std::mutex> lock(stateMu_);
  const auto it = runs_.find(digest);
  if (it == runs_.end()) return std::nullopt;
  const RunState& state = *it->second;
  PartialMap map;
  map.nx = state.layout->nx();
  map.ny = state.layout->ny();
  map.version = state.folded;
  map.complete = state.complete;
  map.tainted = state.tainted;
  map.values = state.accum;
  return map;
}

std::uint64_t ProductServer::subscribe(Field field, Extent extent,
                                       SubscriptionCallback callback) {
  std::lock_guard<std::mutex> lock(deliverMu_);
  const std::uint64_t id = nextSubId_++;
  Subscription& sub = subs_[id];
  sub.field = field;
  sub.extent = extent;
  sub.callback = std::move(callback);
  return id;
}

void ProductServer::unsubscribe(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(deliverMu_);
  subs_.erase(id);
}

void ProductServer::deliver(int origin,
                            const std::vector<TileDelta>& deltas) {
  if (fault::injectionEnabled()) {
    if (const auto act =
            fault::activeInjector()->check("serve_notify_delay", origin);
        act.has_value() && act->kind == fault::FaultKind::RankStall &&
        act->stallSeconds > 0.0)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(act->stallSeconds));
  }
  std::lock_guard<std::mutex> lock(deliverMu_);
  deliverLocked(deltas);
}

void ProductServer::deliverLocked(const std::vector<TileDelta>& deltas) {
  const int edge = store_.tileEdge();
  std::vector<TileDelta> batch;
  for (auto& [id, sub] : subs_) {
    batch.clear();
    for (const TileDelta& delta : deltas) {
      if (delta.field != sub.field) continue;
      if (!tileTouches(delta.tx, delta.ty, edge, sub.extent)) continue;
      auto& last =
          sub.delivered[std::make_tuple(delta.digest, delta.tx, delta.ty)];
      if (delta.version <= last) continue;  // the idempotence fence
      last = delta.version;
      batch.push_back(delta);
    }
    if (!batch.empty()) {
      sub.callback(batch);
      telemetry::count(telemetry::Counter::ServeNotifies);
      std::lock_guard<std::mutex> slock(statsMu_);
      ++stats_.notifies;
    }
  }
}

void ProductServer::reconcile() {
  telemetry::count(telemetry::Counter::ServeReconciles);
  {
    std::lock_guard<std::mutex> slock(statsMu_);
    ++stats_.reconciles;
  }
  // Pass 1 — store anti-entropy: a completed run whose tiles lag (a
  // completion publish exhausted its retries under a drop burst) is
  // republished from the canonical accumulator. No drop consult here: the
  // reconcile path is the convergence backstop.
  std::vector<TileDelta> repub;
  {
    std::lock_guard<std::mutex> lock(stateMu_);
    for (auto& [hex, state] : runs_) {
      if (!state->complete) continue;
      auto deltas = publishTilesLocked(*state, state->totalSamples,
                                       /*forceAll=*/true, /*complete=*/true);
      repub.insert(repub.end(), deltas.begin(), deltas.end());
    }
  }
  // Pass 2 — subscriber anti-entropy: re-derive any delta a subscriber has
  // not seen from the store index (covers a notify that raced a subscribe,
  // and deltas to lagging subscribers after a broker handoff).
  struct RunGeom {
    std::string hex;
    std::array<std::uint8_t, 16> digestRaw{};
    std::size_t nx = 0, ny = 0;
    bool complete = false;
    std::uint64_t totalSamples = 0;
  };
  std::vector<RunGeom> geoms;
  {
    std::lock_guard<std::mutex> lock(stateMu_);
    geoms.reserve(runs_.size());
    for (const auto& [hex, state] : runs_) {
      RunGeom g;
      g.hex = hex;
      g.digestRaw = state->digestRaw;
      g.nx = state->layout->nx();
      g.ny = state->layout->ny();
      g.complete = state->complete;
      g.totalSamples = state->totalSamples;
      geoms.push_back(std::move(g));
    }
  }
  const int edge = store_.tileEdge();
  std::lock_guard<std::mutex> lock(deliverMu_);
  deliverLocked(repub);
  for (auto& [id, sub] : subs_) {
    std::vector<TileDelta> batch;
    for (const RunGeom& g : geoms) {
      forEachTile(sub.extent, g.nx, g.ny, edge, [&](int tx, int ty) {
        TileKey key;
        key.digest = g.digestRaw;
        key.field = static_cast<std::uint16_t>(sub.field);
        key.tx = static_cast<std::uint16_t>(tx);
        key.ty = static_cast<std::uint16_t>(ty);
        const std::uint64_t version = store_.latestVersion(key);
        if (version == 0) return;
        auto& last = sub.delivered[std::make_tuple(g.hex, tx, ty)];
        if (version <= last) return;
        last = version;
        batch.push_back(TileDelta{
            g.hex, sub.field, tx, ty, version,
            g.complete && version >= g.totalSamples});
      });
    }
    if (!batch.empty()) {
      sub.callback(batch);
      telemetry::count(telemetry::Counter::ServeNotifies);
      std::lock_guard<std::mutex> slock(statsMu_);
      ++stats_.notifies;
    }
  }
}

ServerStats ProductServer::stats() const {
  std::lock_guard<std::mutex> lock(statsMu_);
  return stats_;
}

}  // namespace awp::serve
