#include "serve/tile.hpp"

#include <cstring>

#include "util/error.hpp"

namespace awp::serve {

const char* toString(Field field) {
  switch (field) {
    case Field::PgvH: return "pgvh";
  }
  return "?";
}

AWP_HOT bool tileKeyLess(const TileKey& a, const TileKey& b) {
  const int c = std::memcmp(a.digest.data(), b.digest.data(),
                            a.digest.size());
  if (c != 0) return c < 0;
  if (a.field != b.field) return a.field < b.field;
  if (a.ty != b.ty) return a.ty < b.ty;
  return a.tx < b.tx;
}

Extent tileExtent(const TileKey& key, int tileEdge, std::size_t nx,
                  std::size_t ny) {
  const auto edge = static_cast<std::size_t>(tileEdge);
  Extent e;
  e.x0 = static_cast<std::size_t>(key.tx) * edge;
  e.y0 = static_cast<std::size_t>(key.ty) * edge;
  e.x1 = e.x0 + edge < nx ? e.x0 + edge : nx;
  e.y1 = e.y0 + edge < ny ? e.y0 + edge : ny;
  if (e.x0 > nx) e.x0 = nx;
  if (e.y0 > ny) e.y0 = ny;
  return e;
}

namespace {

int hexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::array<std::uint8_t, 16> digestFromHex(const std::string& hex) {
  if (hex.size() != 32)
    throw Error("serve: digest is not 32 hex chars: '" + hex + "'");
  std::array<std::uint8_t, 16> out{};
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int hi = hexNibble(hex[2 * i]);
    const int lo = hexNibble(hex[2 * i + 1]);
    if (hi < 0 || lo < 0)
      throw Error("serve: malformed hex digest: '" + hex + "'");
    out[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return out;
}

std::string digestToHex(const std::array<std::uint8_t, 16>& digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out(32, '0');
  for (std::size_t i = 0; i < digest.size(); ++i) {
    out[2 * i] = kHex[digest[i] >> 4];
    out[2 * i + 1] = kHex[digest[i] & 0xf];
  }
  return out;
}

std::string chunkCacheKey(const std::array<std::uint8_t, 16>& payloadMd5) {
  return "tile-chunk:" + digestToHex(payloadMd5);
}

std::string tileVersionKey(const TileKey& key, std::uint64_t version) {
  return "tile:" + digestToHex(key.digest) + ":" +
         toString(static_cast<Field>(key.field)) + ":" +
         std::to_string(key.tx) + "x" + std::to_string(key.ty) + ":v" +
         std::to_string(version);
}

}  // namespace awp::serve
