#pragma once
// TileStore: the versioned tile index of the serving tier, backed by the
// content-addressed artifact cache. The index maps TileKey -> (version,
// payload digest); payload chunks live in the cache under a pure content
// key, so identical tiles — across scenarios, or across versions of one
// scenario whose extent stopped changing — are stored once (the cache's
// putDedup path keeps the logical-vs-stored accounting).
//
// Version discipline: a publish only lands when it strictly advances the
// tile's version. Retried attempts and at-least-once fabric replays
// publish bit-identical payloads at the same step-derived versions, so a
// duplicate publish is absorbed here (no index churn, no re-notify) and
// a version can never regress.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "sched/artifact_cache.hpp"
#include "serve/tile.hpp"
#include "util/guarded.hpp"
#include "util/hot.hpp"

namespace awp::serve {

struct TileRecord {
  std::uint64_t version = 0;               // samples folded into the tile
  std::array<std::uint8_t, 16> chunkMd5{};  // content key of the payload
  std::uint32_t payloadFloats = 0;
};

struct PublishOutcome {
  bool advanced = false;     // version moved forward (subscribers notified)
  bool chunkStored = false;  // payload was new to the cache tier
};

class TileStore {
 public:
  // `cache` must outlive the store; `tileEdge` is the square tile size in
  // surface points.
  TileStore(sched::ArtifactCache* cache, int tileEdge);

  [[nodiscard]] int tileEdge() const { return tileEdge_; }

  // Publish `payload` as the tile's content at `version`. No-op (absorbed
  // duplicate) unless version strictly advances the tile's current one.
  PublishOutcome publish(const TileKey& key, std::uint64_t version,
                         const float* payload, std::size_t count);

  // Index probe. Alloc-free/throw-free: the query and notify paths call
  // this per candidate tile.
  AWP_HOT bool lookup(const TileKey& key, TileRecord* out) const;
  // Current version of a tile (0 = never published).
  AWP_HOT std::uint64_t latestVersion(const TileKey& key) const;

  // Load a tile's payload through the cache tier (memory, then disk).
  [[nodiscard]] std::optional<std::vector<float>> load(
      const TileKey& key) const;

  [[nodiscard]] std::size_t tileCount() const;

 private:
  sched::ArtifactCache* cache_;
  int tileEdge_;
  mutable std::mutex mu_;
  std::map<TileKey, TileRecord, TileKeyLess> index_ AWP_GUARDED_BY(mu_);
};

}  // namespace awp::serve
