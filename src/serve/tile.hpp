#pragma once
// Tile identity for the hazard-product serving tier. A surface product
// (PGV-H map today; spectral-acceleration bands later) is split into
// fixed-size square tiles; each published tile version is identified by
// (physics digest, field, tile coordinates, window version) and its
// payload is stored content-addressed in the artifact cache, so
// overlapping extents across scenarios — and unchanged tiles across
// window versions — share one stored chunk.
//
// TileKey is a fixed-size, trivially-comparable struct (raw 16-byte
// digest, not hex) so index probes on the query hot path are alloc-free.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/hot.hpp"

namespace awp::serve {

// Surface product fields. Closed enum: the field id is part of every tile
// key and of the serialized chunk key, so values are append-only.
enum class Field : std::uint16_t {
  PgvH = 0,  // horizontal peak ground velocity (max over samples)
};

const char* toString(Field field);

// Half-open surface-point rectangle [x0, x1) x [y0, y1) in global grid
// coordinates.
struct Extent {
  std::size_t x0 = 0, y0 = 0, x1 = 0, y1 = 0;

  [[nodiscard]] bool empty() const { return x1 <= x0 || y1 <= y0; }
  [[nodiscard]] std::size_t width() const { return x1 - x0; }
  [[nodiscard]] std::size_t height() const { return y1 - y0; }
  [[nodiscard]] bool overlaps(const Extent& o) const {
    return x0 < o.x1 && o.x0 < x1 && y0 < o.y1 && o.y0 < y1;
  }
};

// Identity of one tile of one scenario's surface product.
struct TileKey {
  std::array<std::uint8_t, 16> digest{};  // raw MD5 of the scenario spec
  std::uint16_t field = 0;                // Field enum value
  std::uint16_t tx = 0, ty = 0;           // tile coordinates (tile grid)
};

// Total order for index maps. Alloc-free and throw-free: this is the
// comparator under every tile lookup on the query path.
AWP_HOT bool tileKeyLess(const TileKey& a, const TileKey& b);

struct TileKeyLess {
  bool operator()(const TileKey& a, const TileKey& b) const {
    return tileKeyLess(a, b);
  }
};

inline bool operator==(const TileKey& a, const TileKey& b) {
  return !tileKeyLess(a, b) && !tileKeyLess(b, a);
}

// The tile rectangle in surface-point coordinates, clamped to (nx, ny).
Extent tileExtent(const TileKey& key, int tileEdge, std::size_t nx,
                  std::size_t ny);

// Hex digest (32 chars) <-> raw bytes. Throws awp::Error on malformed hex.
std::array<std::uint8_t, 16> digestFromHex(const std::string& hex);
std::string digestToHex(const std::array<std::uint8_t, 16>& digest);

// Cache key of a content-addressed tile chunk: "tile-chunk:<payload md5>".
// Deliberately independent of scenario/field/version — identical payloads
// anywhere in the catalog share one stored chunk.
std::string chunkCacheKey(const std::array<std::uint8_t, 16>& payloadMd5);

// Canonical versioned tile identity string:
// "tile:<digest>:<field>:<tx>x<ty>:v<version>". Deterministic across
// processes for equal inputs — the property pinned by test_serve's
// tile-key determinism case — and the debug/trace name of a publish.
std::string tileVersionKey(const TileKey& key, std::uint64_t version);

}  // namespace awp::serve
