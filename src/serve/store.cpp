#include "serve/store.hpp"

#include <cstring>

#include "telemetry/registry.hpp"
#include "util/error.hpp"
#include "util/md5.hpp"

namespace awp::serve {

TileStore::TileStore(sched::ArtifactCache* cache, int tileEdge)
    : cache_(cache), tileEdge_(tileEdge) {
  AWP_CHECK(cache_ != nullptr);
  AWP_CHECK_MSG(tileEdge_ >= 1, "serve: tile edge must be >= 1");
}

PublishOutcome TileStore::publish(const TileKey& key, std::uint64_t version,
                                  const float* payload, std::size_t count) {
  PublishOutcome out;
  std::vector<std::byte> bytes(count * sizeof(float));
  std::memcpy(bytes.data(), payload, bytes.size());
  const auto md5 = Md5::hash(bytes.data(), bytes.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end() && version <= it->second.version)
      return out;  // duplicate or stale publish: absorbed, never regress
  }
  // Store the chunk before exposing the version: a concurrent reader that
  // sees the new record must be able to load its payload.
  const bool stored = cache_->putDedup(chunkCacheKey(md5), std::move(bytes));
  out.chunkStored = stored;
  if (!stored) telemetry::count(telemetry::Counter::ServeChunkDedups);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& rec = index_[key];
    if (version <= rec.version) return out;  // racer advanced it first
    rec.version = version;
    rec.chunkMd5 = md5;
    rec.payloadFloats = static_cast<std::uint32_t>(count);
  }
  out.advanced = true;
  telemetry::count(telemetry::Counter::ServeTilesPublished);
  telemetry::count(telemetry::Counter::ServeTileBytes,
                   count * sizeof(float));
  return out;
}

AWP_HOT bool TileStore::lookup(const TileKey& key, TileRecord* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  *out = it->second;
  return true;
}

AWP_HOT std::uint64_t TileStore::latestVersion(const TileKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  return it == index_.end() ? 0 : it->second.version;
}

std::optional<std::vector<float>> TileStore::load(const TileKey& key) const {
  TileRecord rec;
  if (!lookup(key, &rec)) return std::nullopt;
  auto bytes = cache_->get(chunkCacheKey(rec.chunkMd5));
  if (!bytes.has_value() ||
      bytes->size() != rec.payloadFloats * sizeof(float))
    return std::nullopt;  // torn cache entry reads as absent, never wrong
  std::vector<float> floats(rec.payloadFloats);
  std::memcpy(floats.data(), bytes->data(), bytes->size());
  return floats;
}

std::size_t TileStore::tileCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

}  // namespace awp::serve
