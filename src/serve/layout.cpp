#include "serve/layout.hpp"

#include <cmath>

#include "mesh/partitioner.hpp"
#include "util/error.hpp"
#include "vcluster/cart.hpp"

namespace awp::serve {

SurfaceLayout::SurfaceLayout(std::size_t nx, std::size_t ny, std::size_t nz,
                             int nranks)
    : nx_(nx), ny_(ny) {
  AWP_CHECK_MSG(nx > 0 && ny > 0 && nz > 0 && nranks > 0,
                "serve: degenerate surface layout");
  const vcluster::CartTopology topo(
      vcluster::CartTopology::balancedDims(nranks, nx, ny, nz));
  const mesh::MeshSpec spec{nx, ny, nz, 0.0, 0.0, 0.0};
  for (int r = 0; r < topo.size(); ++r) {
    const auto sub = mesh::subdomainFor(topo, spec, r);
    if (sub.z.end != nz) continue;  // not a surface rank
    SurfaceSegment seg;
    seg.rank = r;
    seg.offsetFloats = stepFloats_;
    seg.x0 = sub.x.begin;
    seg.y0 = sub.y.begin;
    seg.lnx = sub.x.count();
    seg.lny = sub.y.count();
    segments_.push_back(seg);
    surfaceRanks_.push_back(r);
    stepFloats_ += 3ULL * seg.lnx * seg.lny;
  }
  AWP_CHECK_MSG(stepFloats_ == 3ULL * nx * ny,
                "serve: surface segments do not cover the free surface");
}

void SurfaceLayout::foldSampleMax(const float* record, float* field) const {
  for (const SurfaceSegment& seg : segments_) {
    std::uint64_t at = seg.offsetFloats;
    for (std::size_t gj = seg.y0; gj < seg.y0 + seg.lny; ++gj)
      for (std::size_t gi = seg.x0; gi < seg.x0 + seg.lnx; ++gi) {
        const float u = record[at];
        const float v = record[at + 1];
        at += 3;
        // Must match derivePgvh float-for-float: float multiply/add, the
        // float sqrt overload, strict > (NaN compares false, so a NaN
        // sample never enters the fold — same as the product path).
        const float horiz = std::sqrt(u * u + v * v);
        float& cell = field[gi + nx_ * gj];
        if (horiz > cell) cell = horiz;
      }
  }
}

void SurfaceLayout::recordToRowMajor(const float* recordScalars,
                                     float* field) const {
  for (const SurfaceSegment& seg : segments_) {
    std::uint64_t at = seg.offsetFloats / 3;
    for (std::size_t gj = seg.y0; gj < seg.y0 + seg.lny; ++gj)
      for (std::size_t gi = seg.x0; gi < seg.x0 + seg.lnx; ++gi)
        field[gi + nx_ * gj] = recordScalars[at++];
  }
}

}  // namespace awp::serve
