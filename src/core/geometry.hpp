#pragma once
// Where a rank's subdomain sits inside the global volume — needed by the
// boundary conditions (which only act on ranks touching a physical face)
// and by source injection / receiver extraction (global -> local index
// mapping).
//
// Axis convention: global k = 0 is the BOTTOM of the model; the free
// surface is the global top plane k = global.nz - 1 (grids store k
// increasing upward).

#include "grid/staggered_grid.hpp"
#include "mesh/partitioner.hpp"

namespace awp::core {

struct DomainGeometry {
  grid::GridDims global;
  mesh::SubdomainSpec local;  // global index ranges owned by this rank

  [[nodiscard]] bool touchesXMin() const { return local.x.begin == 0; }
  [[nodiscard]] bool touchesXMax() const { return local.x.end == global.nx; }
  [[nodiscard]] bool touchesYMin() const { return local.y.begin == 0; }
  [[nodiscard]] bool touchesYMax() const { return local.y.end == global.ny; }
  [[nodiscard]] bool touchesBottom() const { return local.z.begin == 0; }
  [[nodiscard]] bool touchesTop() const { return local.z.end == global.nz; }

  // Global index of a local raw index along each axis.
  [[nodiscard]] std::size_t globalX(std::size_t rawI) const {
    return local.x.begin + rawI - grid::kHalo;
  }
  [[nodiscard]] std::size_t globalY(std::size_t rawJ) const {
    return local.y.begin + rawJ - grid::kHalo;
  }
  [[nodiscard]] std::size_t globalZ(std::size_t rawK) const {
    return local.z.begin + rawK - grid::kHalo;
  }

  // True if this rank owns global point (gi, gj, gk); if so the local raw
  // indices are returned through the out parameters.
  [[nodiscard]] bool owns(std::size_t gi, std::size_t gj, std::size_t gk,
                          std::size_t& li, std::size_t& lj,
                          std::size_t& lk) const {
    if (gi < local.x.begin || gi >= local.x.end) return false;
    if (gj < local.y.begin || gj >= local.y.end) return false;
    if (gk < local.z.begin || gk >= local.z.end) return false;
    li = gi - local.x.begin + grid::kHalo;
    lj = gj - local.y.begin + grid::kHalo;
    lk = gk - local.z.begin + grid::kHalo;
    return true;
  }

  // Single-rank geometry covering the whole volume.
  static DomainGeometry single(const grid::GridDims& dims) {
    DomainGeometry g;
    g.global = dims;
    g.local.x = {0, dims.nx};
    g.local.y = {0, dims.ny};
    g.local.z = {0, dims.nz};
    return g;
  }
};

}  // namespace awp::core
