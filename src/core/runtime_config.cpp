#include "core/runtime_config.hpp"

#include <algorithm>
#include <sstream>

#include "io/shared_file.hpp"
#include "perfmodel/machine.hpp"
#include "util/error.hpp"

namespace awp::core {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw Error("runtime config line " + std::to_string(line) + ": " + what);
}

bool parseSwitch(const std::string& v, int line) {
  if (v == "on" || v == "true" || v == "1") return true;
  if (v == "off" || v == "false" || v == "0") return false;
  fail(line, "expected on/off, got '" + v + "'");
}

int parseInt(const std::string& v, int line) {
  try {
    std::size_t used = 0;
    const int n = std::stoi(v, &used);
    if (used != v.size()) throw std::invalid_argument(v);
    return n;
  } catch (const std::exception&) {
    fail(line, "expected an integer, got '" + v + "'");
  }
}

double parseDouble(const std::string& v, int line) {
  try {
    std::size_t used = 0;
    const double d = std::stod(v, &used);
    if (used != v.size()) throw std::invalid_argument(v);
    return d;
  } catch (const std::exception&) {
    fail(line, "expected a number, got '" + v + "'");
  }
}

}  // namespace

RuntimeConfig parseRuntimeConfig(const std::string& text,
                                 const RuntimeConfig& defaults) {
  RuntimeConfig config = defaults;
  std::istringstream in(text);
  std::string rawLine;
  int lineNo = 0;
  while (std::getline(in, rawLine)) {
    ++lineNo;
    const auto comment = rawLine.find('#');
    std::string line = trim(comment == std::string::npos
                                ? rawLine
                                : rawLine.substr(0, comment));
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(lineNo, "expected key = value");
    const std::string key = trim(line.substr(0, eq));
    // Values are case-folded for enum/switch keys; path-valued keys use
    // the raw spelling (filesystems are case-sensitive).
    const std::string rawValue = trim(line.substr(eq + 1));
    std::string value = rawValue;
    std::transform(value.begin(), value.end(), value.begin(), ::tolower);

    auto& s = config.solver;
    if (key == "comm") {
      if (value == "async")
        s.commMode = grid::HaloExchanger::Mode::Asynchronous;
      else if (value == "sync")
        s.commMode = grid::HaloExchanger::Mode::Synchronous;
      else
        fail(lineNo, "comm must be async or sync");
    } else if (key == "reduced_comm") {
      s.reducedComm = parseSwitch(value, lineNo);
    } else if (key == "overlap") {
      s.overlap = parseSwitch(value, lineNo);
    } else if (key == "cache_block") {
      if (value == "off") {
        s.kernels.cacheBlocked = false;
      } else {
        const auto x = value.find('x');
        if (x == std::string::npos)
          fail(lineNo, "cache_block must be off or <kblock>x<jblock>");
        s.kernels.cacheBlocked = true;
        s.kernels.kblock = parseInt(value.substr(0, x), lineNo);
        s.kernels.jblock = parseInt(value.substr(x + 1), lineNo);
        if (s.kernels.kblock <= 0 || s.kernels.jblock <= 0)
          fail(lineNo, "blocking factors must be positive");
      }
    } else if (key == "unroll") {
      s.kernels.unrolled = parseSwitch(value, lineNo);
    } else if (key == "reciprocals") {
      s.kernels.useReciprocals = parseSwitch(value, lineNo);
    } else if (key == "hybrid_threads") {
      s.hybridThreads = parseInt(value, lineNo);
      if (s.hybridThreads < 1) fail(lineNo, "hybrid_threads must be >= 1");
    } else if (key == "absorbing") {
      if (value == "sponge") s.absorbing = AbsorbingType::Sponge;
      else if (value == "pml") s.absorbing = AbsorbingType::Pml;
      else if (value == "none") s.absorbing = AbsorbingType::None;
      else fail(lineNo, "absorbing must be sponge, pml or none");
    } else if (key == "sponge_width") {
      s.spongeWidth = parseInt(value, lineNo);
    } else if (key == "pml_width") {
      s.pml.width = parseInt(value, lineNo);
    } else if (key == "free_surface") {
      s.freeSurface = parseSwitch(value, lineNo);
    } else if (key == "attenuation") {
      s.attenuation.enabled = parseSwitch(value, lineNo);
    } else if (key == "dt") {
      s.dt = parseDouble(value, lineNo);
    } else if (key == "output_sample_steps") {
      config.output.sampleEverySteps = parseInt(value, lineNo);
    } else if (key == "output_decimation") {
      config.output.spatialDecimation = parseInt(value, lineNo);
    } else if (key == "output_aggregate") {
      config.output.flushEverySamples = parseInt(value, lineNo);
    } else if (key == "mesh_io") {
      if (value == "prepartitioned") config.meshIo = MeshIoMode::PrePartitioned;
      else if (value == "ondemand") config.meshIo = MeshIoMode::OnDemand;
      else if (value == "direct") config.meshIo = MeshIoMode::Direct;
      else fail(lineNo, "mesh_io must be prepartitioned, ondemand or direct");
    } else if (key == "checksums") {
      config.checksums = parseSwitch(value, lineNo);
    } else if (key == "health") {
      s.health.enabled = parseSwitch(value, lineNo);
    } else if (key == "health_interval") {
      s.health.monitor.everySteps = parseInt(value, lineNo);
      if (s.health.monitor.everySteps < 1)
        fail(lineNo, "health_interval must be >= 1");
    } else if (key == "health_max_rollbacks") {
      s.health.maxRollbacks = parseInt(value, lineNo);
      if (s.health.maxRollbacks < 0)
        fail(lineNo, "health_max_rollbacks must be >= 0");
    } else if (key == "health_dt_tighten") {
      s.health.dtTighten = parseDouble(value, lineNo);
      if (s.health.dtTighten <= 0.0 || s.health.dtTighten >= 1.0)
        fail(lineNo, "health_dt_tighten must be in (0, 1)");
    } else if (key == "health_growth_limit") {
      s.health.monitor.growthLimit = parseDouble(value, lineNo);
      if (s.health.monitor.growthLimit <= 1.0)
        fail(lineNo, "health_growth_limit must be > 1");
    } else if (key == "health_stall_timeout") {
      s.health.stallTimeoutSeconds = parseDouble(value, lineNo);
      if (s.health.stallTimeoutSeconds <= 0.0)
        fail(lineNo, "health_stall_timeout must be > 0");
    } else if (key == "health_watchdog_miss_threshold") {
      s.health.watchdogMissThreshold = parseInt(value, lineNo);
      if (s.health.watchdogMissThreshold < 1)
        fail(lineNo, "health_watchdog_miss_threshold must be >= 1");
    } else if (key == "health_respawn_budget") {
      s.health.respawnBudget = parseInt(value, lineNo);
      if (s.health.respawnBudget < 0)
        fail(lineNo, "health_respawn_budget must be >= 0");
    } else if (key == "health_dt_rewiden_window") {
      s.health.dtRewidenWindow = parseInt(value, lineNo);
      if (s.health.dtRewidenWindow < 0)
        fail(lineNo, "health_dt_rewiden_window must be >= 0");
    } else if (key == "health_dt_rewiden") {
      s.health.dtRewiden = parseDouble(value, lineNo);
      if (s.health.dtRewiden <= 1.0)
        fail(lineNo, "health_dt_rewiden must be > 1");
    } else if (key == "telemetry") {
      config.telemetryEnabled = parseSwitch(value, lineNo);
    } else if (key == "telemetry_interval") {
      s.telemetry.reportEverySteps = parseInt(value, lineNo);
      if (s.telemetry.reportEverySteps < 0)
        fail(lineNo, "telemetry_interval must be >= 0");
    } else if (key == "telemetry_report") {
      s.telemetry.reportPath = rawValue;
    } else if (key == "telemetry_trace") {
      s.telemetry.tracePathPrefix = rawValue;
    } else if (key == "telemetry_chrome") {
      s.telemetry.chromeTracePath = rawValue;
    } else if (key == "telemetry_ring") {
      const int cap = parseInt(value, lineNo);
      if (cap < 1) fail(lineNo, "telemetry_ring must be >= 1");
      config.telemetryRingCapacity = static_cast<std::size_t>(cap);
    } else if (key == "sched_workers") {
      config.sched.workers = parseInt(value, lineNo);
      if (config.sched.workers < 1) fail(lineNo, "sched_workers must be >= 1");
    } else if (key == "sched_memory_mb") {
      const int mb = parseInt(value, lineNo);
      if (mb < 0) fail(lineNo, "sched_memory_mb must be >= 0");
      config.sched.memoryMb = static_cast<std::size_t>(mb);
    } else if (key == "sched_queue_capacity") {
      config.sched.queueCapacity = parseInt(value, lineNo);
      if (config.sched.queueCapacity < 1)
        fail(lineNo, "sched_queue_capacity must be >= 1");
    } else if (key == "sched_admission") {
      if (value == "reject") config.sched.admitBlock = false;
      else if (value == "block") config.sched.admitBlock = true;
      else fail(lineNo, "sched_admission must be reject or block");
    } else if (key == "sched_max_retries") {
      config.sched.maxRetries = parseInt(value, lineNo);
      if (config.sched.maxRetries < 0)
        fail(lineNo, "sched_max_retries must be >= 0");
    } else if (key == "sched_stall_timeout") {
      config.sched.stallTimeoutSeconds = parseDouble(value, lineNo);
      if (config.sched.stallTimeoutSeconds <= 0.0)
        fail(lineNo, "sched_stall_timeout must be > 0");
    } else if (key == "sched_cancel_check") {
      config.sched.cancelCheckEverySteps = parseInt(value, lineNo);
      if (config.sched.cancelCheckEverySteps < 1)
        fail(lineNo, "sched_cancel_check must be >= 1");
    } else if (key == "sched_retry_dt_tighten") {
      config.sched.retryDtTighten = parseDouble(value, lineNo);
      if (config.sched.retryDtTighten <= 0.0 ||
          config.sched.retryDtTighten > 1.0)
        fail(lineNo, "sched_retry_dt_tighten must be in (0, 1]");
    } else if (key == "sched_respawn_budget") {
      config.sched.respawnBudget = parseInt(value, lineNo);
      if (config.sched.respawnBudget < 0)
        fail(lineNo, "sched_respawn_budget must be >= 0");
    } else if (key == "sched_respawn_buddy") {
      config.sched.respawnBuddy = parseSwitch(value, lineNo);
    } else if (key == "sched_cache") {
      config.sched.cacheProducts = parseSwitch(value, lineNo);
    } else if (key == "sched_cache_dir") {
      config.sched.cacheDir = rawValue;
    } else if (key == "sched_work_dir") {
      config.sched.workDir = rawValue;
    } else if (key == "fabric_brokers") {
      config.fabric.brokers = parseInt(value, lineNo);
      if (config.fabric.brokers < 1)
        fail(lineNo, "fabric_brokers must be >= 1");
    } else if (key == "fabric_vnodes") {
      config.fabric.vnodes = parseInt(value, lineNo);
      if (config.fabric.vnodes < 1) fail(lineNo, "fabric_vnodes must be >= 1");
    } else if (key == "fabric_lease_seconds") {
      config.fabric.leaseSeconds = parseDouble(value, lineNo);
      if (config.fabric.leaseSeconds <= 0.0)
        fail(lineNo, "fabric_lease_seconds must be > 0");
    } else if (key == "fabric_heartbeat_seconds") {
      config.fabric.heartbeatSeconds = parseDouble(value, lineNo);
      if (config.fabric.heartbeatSeconds <= 0.0)
        fail(lineNo, "fabric_heartbeat_seconds must be > 0");
    } else if (key == "fabric_degraded_misses") {
      config.fabric.degradedAfterMisses = parseInt(value, lineNo);
      if (config.fabric.degradedAfterMisses < 1)
        fail(lineNo, "fabric_degraded_misses must be >= 1");
    } else if (key == "fabric_pump_interval") {
      config.fabric.pumpIntervalSeconds = parseDouble(value, lineNo);
      if (config.fabric.pumpIntervalSeconds <= 0.0)
        fail(lineNo, "fabric_pump_interval must be > 0");
    } else if (key == "fabric_forward_attempts") {
      config.fabric.forwardAttempts = parseInt(value, lineNo);
      if (config.fabric.forwardAttempts < 1)
        fail(lineNo, "fabric_forward_attempts must be >= 1");
    } else if (key == "fabric_root_dir") {
      config.fabric.rootDir = rawValue;
    } else if (key == "serve_tile") {
      config.serve.tileEdge = parseInt(value, lineNo);
      if (config.serve.tileEdge < 1) fail(lineNo, "serve_tile must be >= 1");
    } else if (key == "serve_window") {
      config.serve.windowSamples = parseInt(value, lineNo);
      if (config.serve.windowSamples < 1)
        fail(lineNo, "serve_window must be >= 1");
    } else if (key == "serve_partial") {
      config.serve.partialPublish = parseSwitch(value, lineNo);
    } else if (key == "serve_reconcile_ticks") {
      config.serve.reconcileEveryTicks = parseInt(value, lineNo);
      if (config.serve.reconcileEveryTicks < 1)
        fail(lineNo, "serve_reconcile_ticks must be >= 1");
    } else if (key == "cycle_nx") {
      config.cycle.nx = parseInt(value, lineNo);
      if (config.cycle.nx < 1) fail(lineNo, "cycle_nx must be >= 1");
    } else if (key == "cycle_nz") {
      config.cycle.nz = parseInt(value, lineNo);
      if (config.cycle.nz < 1) fail(lineNo, "cycle_nz must be >= 1");
    } else if (key == "cycle_cell") {
      config.cycle.cellMeters = parseDouble(value, lineNo);
      if (config.cycle.cellMeters <= 0.0)
        fail(lineNo, "cycle_cell must be > 0");
    } else if (key == "cycle_years") {
      config.cycle.years = parseDouble(value, lineNo);
      if (config.cycle.years <= 0.0) fail(lineNo, "cycle_years must be > 0");
    } else if (key == "cycle_max_events") {
      config.cycle.maxEvents = parseInt(value, lineNo);
      if (config.cycle.maxEvents < 0)
        fail(lineNo, "cycle_max_events must be >= 0");
    } else if (key == "cycle_seed") {
      const int seed = parseInt(value, lineNo);
      if (seed < 0) fail(lineNo, "cycle_seed must be >= 0");
      config.cycle.seed = static_cast<std::uint64_t>(seed);
    } else if (key == "cycle_event_rate") {
      config.cycle.eventRate = parseDouble(value, lineNo);
      if (config.cycle.eventRate <= 0.0)
        fail(lineNo, "cycle_event_rate must be > 0");
    } else if (key == "cycle_lock_rate") {
      config.cycle.lockRate = parseDouble(value, lineNo);
      if (config.cycle.lockRate <= 0.0)
        fail(lineNo, "cycle_lock_rate must be > 0");
    } else if (key == "cycle_priority") {
      config.cycle.priority = parseInt(value, lineNo);
    } else {
      fail(lineNo, "unknown key '" + key + "'");
    }
  }
  return config;
}

RuntimeConfig loadRuntimeConfig(const std::string& path,
                                const RuntimeConfig& defaults) {
  return parseRuntimeConfig(io::readTextFile(path), defaults);
}

RuntimeConfig defaultsForMachine(const std::string& machineName) {
  const auto& machine = perfmodel::machineByName(machineName);
  RuntimeConfig config;
  auto& s = config.solver;
  // NUMA machines need the asynchronous redesign (§IV.A); single-socket
  // torus machines tolerate the synchronous model but async never hurts.
  s.commMode = grid::HaloExchanger::Mode::Asynchronous;
  s.reducedComm = true;
  s.kernels.useReciprocals = true;
  // Cache blocking tuned for the deep cache hierarchies of the Opteron
  // machines; the BG PowerPCs with small L1 prefer smaller tiles.
  s.kernels.cacheBlocked = true;
  if (machine.name == "BGW" || machine.name == "Intrepid") {
    s.kernels.kblock = 8;
    s.kernels.jblock = 4;
  } else {
    s.kernels.kblock = 16;
    s.kernels.jblock = 8;
  }
  s.kernels.unrolled = true;
  // Overlap paid off on mid-scale XT5/Ranger runs (§IV.C) but was dropped
  // for full-scale Jaguar production.
  s.overlap = machine.name == "Ranger";
  // Lustre (XT5) machines read pre-partitioned input well when throttled;
  // the GPFS/BG machines favor the collective on-demand model (§III.C).
  config.meshIo = (machine.name == "BGW" || machine.name == "Intrepid")
                      ? MeshIoMode::OnDemand
                      : MeshIoMode::PrePartitioned;
  return config;
}

}  // namespace awp::core
