#include "core/solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>

#include "fault/injector.hpp"
#include "telemetry/chrome_trace.hpp"
#include "util/error.hpp"
#include "util/hot.hpp"

namespace awp::core {

using grid::kHalo;

WaveSolver::WaveSolver(vcluster::Communicator& comm,
                       const vcluster::CartTopology& topo,
                       const SolverConfig& config,
                       const mesh::MeshBlock& block)
    : comm_(comm), topo_(topo), config_(config) {
  geom_.global = config_.globalDims;
  geom_.local = block.spec;
  init(block);
}

WaveSolver::WaveSolver(vcluster::Communicator& comm,
                       const vcluster::CartTopology& topo,
                       const SolverConfig& config,
                       const vmodel::Material& material)
    : comm_(comm), topo_(topo), config_(config) {
  geom_.global = config_.globalDims;
  mesh::MeshSpec spec{config_.globalDims.nx, config_.globalDims.ny,
                      config_.globalDims.nz, config_.h, 0.0, 0.0};
  mesh::MeshBlock block;
  block.spec = mesh::subdomainFor(topo, spec, comm.rank());
  block.points.assign(block.spec.pointCount(), material);
  geom_.local = block.spec;
  init(block);
}

void WaveSolver::init(const mesh::MeshBlock& block) {
  AWP_CHECK(comm_.size() == topo_.size());

  const grid::GridDims local{block.spec.x.count(), block.spec.y.count(),
                             block.spec.z.count()};
  // Stencil footprint: every local block must hold at least the halo depth.
  AWP_CHECK_MSG(local.nx >= kHalo && local.ny >= kHalo && local.nz >= kHalo,
                "subdomain too small for the 4th-order stencil");

  // Two-pass construction: the CFL step needs the material, the grid needs
  // dt. Build with a provisional dt, then recompute.
  double dt = config_.dt;
  if (dt <= 0.0) {
    grid::StaggeredGrid probe(local, config_.h, 1.0);
    probe.setMaterial(block);
    const double localDt = probe.stableDt();
    dt = comm_.allreduce(localDt, vcluster::ReduceOp::Min);
    config_.dt = dt;
    dtDerived_ = true;
    if (comm_.rank() == 0)
      std::fprintf(stderr, "[awp] CFL-derived dt = %.6g s (h = %g m)\n", dt,
                   config_.h);
  }

  grid_ = std::make_unique<grid::StaggeredGrid>(local, config_.h, dt,
                                                config_.attenuation);
  grid_->setMaterial(block);

  if (config_.hybridThreads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.hybridThreads);
    config_.kernels.pool = pool_.get();
  }

  halo_ = std::make_unique<grid::HaloExchanger>(
      comm_, topo_, config_.commMode, config_.reducedComm);
  halo_->exchangeMaterial(*grid_);

  freeSurface_ = std::make_unique<FreeSurface>(geom_, config_.freeSurface);
  if (config_.absorbing == AbsorbingType::Sponge)
    sponge_ = std::make_unique<SpongeLayer>(geom_, *grid_,
                                            config_.spongeWidth);
  if (config_.absorbing == AbsorbingType::Pml) {
    const double vpMax =
        comm_.allreduce(grid_->maxVp(), vcluster::ReduceOp::Max);
    pml_ = std::make_unique<PmlBoundary>(geom_, *grid_, config_.pml, vpMax);
  }
  surface_ = std::make_unique<SurfaceMonitor>(geom_);

  if (config_.health.enabled)
    guard_ = std::make_unique<health::HealthGuard>(config_.health);

  dtBaseline_ = config_.dt;
}

void WaveSolver::addSource(MomentRateSource src) {
  sources_.add(std::move(src));
  sources_.bind(geom_);
}

void WaveSolver::addReceiver(std::string name, std::size_t gi,
                             std::size_t gj) {
  receivers_.add(std::move(name), gi, gj);
  receivers_.bind(geom_);
}

void WaveSolver::attachSurfaceOutput(const SurfaceOutputConfig& out) {
  AWP_CHECK(out.file != nullptr);
  surfaceOutput_ = out;
  if (!geom_.touchesTop()) return;

  // Decimated, rank-blocked layout: within each sampled step's record, the
  // surface ranks own contiguous segments ordered by rank id, addressed by
  // explicit displacement — "we use explicit displacements to perform data
  // accesses at the specific locations for all the participating
  // processors" (§III.E). Every rank computes the full displacement table
  // deterministically from the topology, so no coordination is needed.
  const auto dec = static_cast<std::size_t>(out.spatialDecimation);
  auto decCount = [&](vcluster::Range r) {
    const std::size_t first = (r.begin + dec - 1) / dec;
    const std::size_t last = (r.end + dec - 1) / dec;
    return last - first;
  };
  const mesh::MeshSpec spec{geom_.global.nx, geom_.global.ny,
                            geom_.global.nz, config_.h, 0.0, 0.0};
  std::uint64_t myOffset = 0, stepFloats = 0;
  for (int r = 0; r < topo_.size(); ++r) {
    const auto sub = mesh::subdomainFor(topo_, spec, r);
    if (sub.z.end != geom_.global.nz) continue;  // not a surface rank
    const std::uint64_t floats =
        3ULL * decCount(sub.x) * decCount(sub.y);
    if (r == comm_.rank()) myOffset = stepFloats;
    stepFloats += floats;
  }
  const std::size_t lnx = decCount(geom_.local.x);
  const std::size_t lny = decCount(geom_.local.y);
  surfaceSample_.resize(3 * lnx * lny);
  surfaceWriter_ = std::make_unique<io::AggregatedWriter>(
      out.file, 3 * lnx * lny, myOffset, stepFloats, out.flushEverySamples);
  if (out.flushObserver) surfaceWriter_->setFlushObserver(out.flushObserver);
}

void WaveSolver::attachCheckpoints(io::CheckpointStore* store,
                                   int everySteps) {
  checkpoints_ = store;
  checkpointEvery_ = everySteps;
}

void WaveSolver::attachBuddies(io::BuddyStore* store, int everySteps) {
  AWP_CHECK_MSG(store == nullptr || store->size() == comm_.size(),
                "attachBuddies: store sized for a different cluster");
  buddies_ = store;
  buddyEvery_ = everySteps;
}

AWP_HOT void WaveSolver::velocityPhase() {
  // Halo exchanges and PML updates open nested spans, so this bucket's
  // exclusive time is the FD kernels plus free-surface images.
  telemetry::ScopedSpan span(telemetry::Phase::VelocityKernel);
  const Region r = Region::interior(*grid_);
  if (config_.overlap) {
    // §IV.C: "While the value of v is computed, the exchange of u can be
    // performed simultaneously" — per-component interleaving.
    {
      ScopedPhase t(phases_, Phase::Compute);
      updateVelocity(*grid_, VelocityComponent::U, config_.kernels, r);
    }
    {
      ScopedPhase t(phases_, Phase::Communicate);
      halo_->exchangeFields(*grid_, {grid::FieldId::U});
    }
    {
      ScopedPhase t(phases_, Phase::Compute);
      updateVelocity(*grid_, VelocityComponent::V, config_.kernels, r);
    }
    {
      ScopedPhase t(phases_, Phase::Communicate);
      halo_->exchangeFields(*grid_, {grid::FieldId::V});
    }
    {
      ScopedPhase t(phases_, Phase::Compute);
      updateVelocity(*grid_, VelocityComponent::W, config_.kernels, r);
      if (pml_) {
        telemetry::ScopedSpan absorb(telemetry::Phase::Absorb);
        pml_->updateVelocity(*grid_);
      }
    }
    {
      ScopedPhase t(phases_, Phase::Communicate);
      halo_->exchangeFields(*grid_, {grid::FieldId::W});
      if (pml_) {
        // PML rewrote u/v/w in the zones after their exchanges; refresh.
        halo_->exchangeVelocities(*grid_);
      }
    }
  } else {
    {
      ScopedPhase t(phases_, Phase::Compute);
      updateVelocity(*grid_, config_.kernels);
      if (pml_) {
        telemetry::ScopedSpan absorb(telemetry::Phase::Absorb);
        pml_->updateVelocity(*grid_);
      }
    }
    {
      ScopedPhase t(phases_, Phase::Communicate);
      halo_->exchangeVelocities(*grid_);
    }
  }
  freeSurface_->applyVelocityImages(*grid_);
}

AWP_HOT void WaveSolver::stressPhase() {
  telemetry::ScopedSpan span(telemetry::Phase::StressKernel);
  const Region r = Region::interior(*grid_);
  {
    ScopedPhase t(phases_, Phase::Compute);
    updateStress(*grid_, StressGroup::Normal, config_.kernels, r);
    updateStress(*grid_, StressGroup::XY, config_.kernels, r);
    updateStress(*grid_, StressGroup::XZ, config_.kernels, r);
    updateStress(*grid_, StressGroup::YZ, config_.kernels, r);
    if (pml_) {
      telemetry::ScopedSpan absorb(telemetry::Phase::Absorb);
      pml_->updateStress(*grid_);
    }
    sources_.inject(*grid_, step_);
  }
  freeSurface_->applyStressImages(*grid_);
  {
    ScopedPhase t(phases_, Phase::Communicate);
    halo_->exchangeStresses(*grid_);
  }
  if (sponge_) {
    ScopedPhase t(phases_, Phase::Compute);
    telemetry::ScopedSpan absorb(telemetry::Phase::Absorb);
    sponge_->apply(*grid_);
  }
}

AWP_HOT void WaveSolver::observationPhase() {
  {
    // Step-indexed recording: replayed windows overwrite their first-pass
    // samples, so observations stay one-record-per-step across rollbacks.
    telemetry::ScopedSpan span(telemetry::Phase::Output);
    receivers_.record(*grid_, step_);
    surface_->accumulate(*grid_);
  }

  if (surfaceWriter_ && surfaceOutput_ &&
      step_ % static_cast<std::size_t>(surfaceOutput_->sampleEverySteps) ==
          0 &&
      geom_.touchesTop()) {
    ScopedPhase t(phases_, Phase::Output);
    telemetry::ScopedSpan span(telemetry::Phase::Output);
    const auto dec =
        static_cast<std::size_t>(surfaceOutput_->spatialDecimation);
    const std::size_t T = kHalo + grid_->dims().nz - 1;
    // Fill the staging buffer preallocated by attachSurfaceOutput; the
    // decimated loop visits exactly surfaceSample_.size() / 3 points.
    std::size_t at = 0;
    for (std::size_t gj = (geom_.local.y.begin + dec - 1) / dec * dec;
         gj < geom_.local.y.end; gj += dec)
      for (std::size_t gi = (geom_.local.x.begin + dec - 1) / dec * dec;
           gi < geom_.local.x.end; gi += dec) {
        const std::size_t i = gi - geom_.local.x.begin + kHalo;
        const std::size_t j = gj - geom_.local.y.begin + kHalo;
        surfaceSample_[at++] = grid_->u(i, j, T);
        surfaceSample_[at++] = grid_->v(i, j, T);
        surfaceSample_[at++] = grid_->w(i, j, T);
      }
    const std::uint64_t sampleIndex =
        step_ / static_cast<std::size_t>(surfaceOutput_->sampleEverySteps);
    surfaceWriter_->writeSampleAt(sampleIndex, surfaceSample_.data(), at);
  }

  const bool ckptDue =
      checkpoints_ != nullptr && checkpointEvery_ > 0 && step_ > 0 &&
      step_ % static_cast<std::size_t>(checkpointEvery_) == 0;
  const bool buddyDue =
      buddies_ != nullptr && buddyEvery_ > 0 && step_ > 0 &&
      step_ % static_cast<std::size_t>(buddyEvery_) == 0;
  if (ckptDue || buddyDue) {
    // Checkpoint veto: never persist a non-finite state. A blow-up that
    // slips a NaN into a checkpoint between poisoning and detection would
    // turn every later rollback into a restore-garbage-retry loop. The
    // veto is COLLECTIVE: if any rank is poisoned, no rank writes —
    // otherwise the clean ranks' two-generation stores rotate past the
    // last step the poisoned rank can still restore. The buddy replicas
    // share the veto for the same reason.
    telemetry::ScopedSpan span(telemetry::Phase::Checkpoint);
    bool veto = false;
    if (guard_) {
      const std::int64_t bad =
          health::FieldMonitor::allFinite(*grid_) ? 0 : 1;
      veto = comm_.allreduce(bad, vcluster::ReduceOp::Max) != 0;
    }
    if (veto) {
      guard_->noteCheckpointVeto(step_);
    } else {
      persistState(ckptDue, buddyDue);
    }
  }
}

void WaveSolver::persistState(bool toDisk, bool toBuddy) {
  const auto state = grid_->saveState();
  if (toDisk) {
    ScopedPhase t(phases_, Phase::Output);
    checkpoints_->write(comm_.rank(), step_, state);
  }
  if (!toBuddy) return;
  buddies_->storeSelf(comm_.rank(), step_, state);
  if (comm_.size() == 1) return;  // no partner: the self blob suffices
  // Ring replica exchange: ship my blob to my buddy, receive my
  // predecessor's and retain it as their replica. Deterministic order
  // (everyone sends, then everyone receives) — buffered sends never block.
  const int buddy = topo_.ringBuddy(comm_.rank());
  const int pred = (comm_.rank() + comm_.size() - 1) % comm_.size();
  comm_.sendValue(buddy, vcluster::kTagBuddySize,
                  static_cast<std::uint64_t>(state.size()));
  comm_.send(buddy, vcluster::kTagBuddyData, state.data(), state.size());
  const auto n = comm_.recvValue<std::uint64_t>(pred, vcluster::kTagBuddySize);
  std::vector<std::byte> replica(n);
  comm_.recv(pred, vcluster::kTagBuddyData, replica.data(), n);
  // buddy_drop site: the replica is lost in flight AFTER the wire exchange
  // (occurrence streams are attributed to the replica's OWNER, so plans
  // read as "drop rank R's replica").
  if (fault::injectionEnabled()) {
    if (auto act = fault::activeInjector()->check("buddy_drop", pred);
        act && act->kind == fault::FaultKind::MessageDrop) {
      buddies_->noteDrop(pred);
      return;
    }
  }
  buddies_->storeReplica(pred, step_, replica);
  telemetry::count(telemetry::Counter::BuddyBlobsReplicated, 1);
}

void WaveSolver::stepEntryChecks() {
  // Epoch fence before any per-rank side effect: a zombie incarnation
  // woken after a respawn must quiesce here, before it can beat the
  // heartbeat or write telemetry for a step the replacement re-runs.
  comm_.fencePoint();
  if (!fault::injectionEnabled()) return;
  // Fault hooks: the injector can wedge this rank (RankStall — exercises
  // the watchdog), poison one deterministic interior cell (FieldPoison —
  // exercises blow-up detection and rollback), or kill the rank thread
  // outright (rank_death — exercises the respawn ladder).
  if (auto act = fault::activeInjector()->check("rank_death", comm_.rank());
      act && act->kind == fault::FaultKind::RankDeath)
    throw vcluster::RankDeathError(comm_.rank(), step_);
  if (auto act =
          fault::activeInjector()->check("solver.step", comm_.rank())) {
    if (act->kind == fault::FaultKind::RankStall)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(act->stallSeconds));
    if (act->kind == fault::FaultKind::FieldPoison) {
      const auto& d = grid_->dims();
      const std::size_t n = act->flipBit % d.count();
      grid_->u(kHalo + n % d.nx, kHalo + (n / d.nx) % d.ny,
               kHalo + n / (d.nx * d.ny)) =
          std::numeric_limits<float>::quiet_NaN();
    }
  }
}

AWP_HOT void WaveSolver::step() {
  stepEntryChecks();
  telemetry::stepMark(step_);
  telemetry::count(telemetry::Counter::CellsUpdated, grid_->dims().count());
  telemetry::count(
      telemetry::Counter::FlopsEstimated,
      static_cast<std::uint64_t>(
          static_cast<double>(grid_->dims().count()) *
          flopsPerPointPerStep(config_.attenuation.enabled)));
  // Heartbeat AFTER the fault hook: a stalled rank's last beat stays one
  // step behind its neighbors (which beat, then block in the halo
  // exchange), so the watchdog can name the origin of a stall.
  if (guard_) guard_->beat(comm_.rank(), step_);
  velocityPhase();
  stressPhase();
  observationPhase();
  if (config_.barrierPerStep) {
    ScopedPhase t(phases_, Phase::Synchronize);
    comm_.barrier();
  }
  ++step_;
}

health::PreflightContext WaveSolver::buildPreflightContext(
    std::size_t plannedSteps) const {
  health::PreflightContext ctx;
  ctx.grid = grid_.get();
  ctx.globalDims = config_.globalDims;
  ctx.dt = config_.dt;
  ctx.h = config_.h;
  ctx.limits = config_.health.limits;
  switch (config_.absorbing) {
    case AbsorbingType::None:
      break;
    case AbsorbingType::Sponge:
      ctx.boundary = health::BoundaryKind::Sponge;
      ctx.boundaryWidth = config_.spongeWidth;
      break;
    case AbsorbingType::Pml:
      ctx.boundary = health::BoundaryKind::Pml;
      ctx.boundaryWidth = config_.pml.width;
      break;
  }
  ctx.touchesXMin = geom_.touchesXMin();
  ctx.touchesXMax = geom_.touchesXMax();
  ctx.touchesYMin = geom_.touchesYMin();
  ctx.touchesYMax = geom_.touchesYMax();
  ctx.touchesBottom = geom_.touchesBottom();
  ctx.decompX = topo_.dims().x;
  ctx.decompY = topo_.dims().y;
  ctx.decompZ = topo_.dims().z;
  ctx.haloWidth = kHalo;
  ctx.plannedSteps = plannedSteps;
  for (const auto& s : sources_.sources())
    ctx.sources.push_back({s.gi, s.gj, s.gk, s.stepCount()});
  return ctx;
}

void WaveSolver::handleBlowup(const health::ClusterVerdict& cv) {
  // Every rank saw the same allreduced verdict and shares the same rollback
  // budget, so all take the same branch — recovery and abort are both
  // collective.
  if (checkpoints_ != nullptr && guard_->rollbackBudgetLeft()) {
    const std::size_t from = step_;
    try {
      restart();
    } catch (const Error& e) {
      throw Error(guard_->abortDump(cv, from) +
                  "; rollback failed: " + e.what());
    }
    const double newDt = config_.dt * config_.health.dtTighten;
    config_.dt = newDt;
    grid_->setDt(newDt);
    guard_->noteRollback(from, step_, newDt);
    // Open (or extend) the replay window: until the solver re-reaches the
    // step it blew up at, enclosed spans count as replay, not useful work.
    replayTarget_ = std::max(replayTarget_, from);
    replaySpan_.begin(telemetry::Phase::RollbackReplay);
    return;
  }
  throw Error(guard_->abortDump(cv, step_));
}

void WaveSolver::maybeRewiden() {
  if (!guard_ || !guard_->rewidenDue()) return;
  if (replaySpan_.active()) return;  // never widen mid-replay
  if (config_.dt >= dtBaseline_) return;  // nothing tightened to undo
  const double newDt =
      std::min(config_.dt * config_.health.dtRewiden, dtBaseline_);
  config_.dt = newDt;
  grid_->setDt(newDt);
  guard_->noteRewiden(step_, newDt);
}

void WaveSolver::emitTelemetry(double wallSeconds, bool endOfRun) {
  telemetry::Session* session = telemetry::activeSession();
  if (session == nullptr) return;
  // Under the scenario service the session outlives this solver and is
  // shared with concurrent jobs; aggregation (which reads the off-rank
  // slot) is deferred to the service. Uniform config: no rank divergence.
  if (!config_.telemetry.emitAggregates) return;
  // Collective: every rank contributes its summary; rank 0 gets the report.
  const telemetry::ClusterReport report =
      telemetry::aggregate(comm_, *session, step_, wallSeconds);
  if (endOfRun && !config_.telemetry.tracePathPrefix.empty())
    telemetry::writeTraceFile(config_.telemetry.tracePathPrefix + ".rank" +
                                  std::to_string(comm_.rank()) + ".jsonl",
                              session->slot(comm_.rank()));
  if (endOfRun && !config_.telemetry.chromeTracePath.empty()) {
    // Rank 0 reads every rank's ring: flank with barriers so no rank is
    // still writing spans (before) and none starts new ones until the
    // file is out (after).
    comm_.barrier();
    if (comm_.rank() == 0)
      telemetry::writeChromeTraceFile(config_.telemetry.chromeTracePath,
                                      *session);
    comm_.barrier();
  }
  if (comm_.rank() != 0) return;
  lastTelemetryReport_ = report;
  if (!config_.telemetry.reportPath.empty())
    telemetry::writeReportFile(config_.telemetry.reportPath, report);
}

void WaveSolver::run(std::size_t nSteps,
                     const std::function<void(std::size_t)>& onStep) {
  Stopwatch wall;
  if (guard_ && !preflightDone_) {
    guard_->preflight(comm_, buildPreflightContext(nSteps));
    preflightDone_ = true;
  }
  const std::size_t target = step_ + nSteps;
  const auto reportEvery =
      static_cast<std::size_t>(std::max(config_.telemetry.reportEverySteps,
                                        0));
  while (step_ < target) {
    step();
    // The replay window closes once the solver re-reaches the step it
    // rolled back from: everything after is new work.
    if (replaySpan_.active() && step_ >= replayTarget_) replaySpan_.end();
    if (onStep) onStep(step_);
    // Scan on the monitor cadence plus once at the end of the run, so a
    // run can never return an undetected non-finite field. A Fatal verdict
    // rolls step_ back below target and the loop re-runs the window.
    if (guard_ && (guard_->scanDue(step_) || step_ == target)) {
      const auto cv = guard_->evaluate(comm_, *grid_, step_);
      if (cv.verdict == health::Verdict::Fatal)
        handleBlowup(cv);
      else if (cv.verdict == health::Verdict::Healthy)
        maybeRewiden();
    }
    // Interval aggregation: collective, and consistent because every rank
    // holds the same step_ (the loop is lockstep).
    if (reportEvery > 0 && step_ % reportEvery == 0 && step_ < target)
      emitTelemetry(wallSeconds_ + wall.seconds(), /*endOfRun=*/false);
  }
  if (replaySpan_.active()) replaySpan_.end();
  if (surfaceWriter_) surfaceWriter_->flush();
  wallSeconds_ += wall.seconds();
  emitTelemetry(wallSeconds_, /*endOfRun=*/true);
}

void WaveSolver::restart() {
  AWP_CHECK_MSG(checkpoints_ != nullptr || buddies_ != nullptr,
                "no checkpoint or buddy store attached");
  // True collective (§III.F): ranks may disagree on their newest valid
  // generation (one rank's newest checkpoint can be torn while its
  // neighbors' are fine, or a replacement rank only has its buddy's
  // replica), so all ranks allreduce-agree on the newest step available on
  // *every* rank and restore that generation. The diskless buddy store
  // extends each rank's candidate set; per-rank restore prefers it and
  // falls back to the two-generation disk store.
  std::int64_t mine = -1;
  if (checkpoints_ != nullptr) {
    if (const auto newest = checkpoints_->newestValidStep(comm_.rank()))
      mine = static_cast<std::int64_t>(*newest);
  }
  if (buddies_ != nullptr) {
    if (const auto newest = buddies_->newestStep(comm_.rank()))
      mine = std::max(mine, static_cast<std::int64_t>(*newest));
  }
  const std::int64_t agreed =
      comm_.allreduce(mine, vcluster::ReduceOp::Min);
  AWP_CHECK_MSG(agreed >= 0,
                "restart: some rank has no valid checkpoint generation");
  const auto agreedStep = static_cast<std::uint64_t>(agreed);
  bool restoredFromBuddy = false;
  if (buddies_ != nullptr) {
    if (const auto blob = buddies_->restore(comm_.rank(), agreedStep)) {
      grid_->restoreState(*blob);
      restoredFromBuddy = true;
      telemetry::count(telemetry::Counter::BuddyRestores, 1);
    }
  }
  if (!restoredFromBuddy) {
    AWP_CHECK_MSG(checkpoints_ != nullptr,
                  "restart: agreed step not in the buddy store and no disk "
                  "store attached");
    const auto restored = checkpoints_->readStep(comm_.rank(), agreedStep);
    grid_->restoreState(restored.state);
  }
  step_ = agreedStep + 1;
  if (surfaceWriter_ && surfaceOutput_) {
    // Samples before the resume point are already on disk (written by this
    // writer or by a previous attempt sharing the output file): mark the
    // prefix persisted so the first post-resume flush cannot zero-fill it.
    const auto every =
        static_cast<std::uint64_t>(surfaceOutput_->sampleEverySteps);
    surfaceWriter_->resumeFrom((step_ + every - 1) / every);
  }
  comm_.barrier();
}

double WaveSolver::flopsExecuted() const {
  return static_cast<double>(step_) *
         static_cast<double>(grid_->dims().count()) *
         flopsPerPointPerStep(config_.attenuation.enabled);
}

}  // namespace awp::core
