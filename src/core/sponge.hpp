#pragma once
// Cerjan sponge-layer absorbing boundary (§II.D): "These ABCs apply a
// damping term to the full (un-split) wavefield inside the sponge layer
// and are unconditionally stable. However, the ability of the sponge
// layers to absorb reflections is poorer than PMLs." Implemented as the
// classic per-step multiplicative taper g(d) = exp(-(a (W-d))^2) applied
// to all wavefields within W cells of the non-top physical boundaries.

#include <vector>

#include "core/geometry.hpp"
#include "grid/staggered_grid.hpp"

namespace awp::core {

class SpongeLayer {
 public:
  // width: sponge thickness in cells; amplitude: Cerjan 'a' parameter for
  // a 20-cell sponge (rescaled with width).
  SpongeLayer(const DomainGeometry& geom, const grid::StaggeredGrid& g,
              int width = 20, double amplitude = 0.015);

  // Multiply all nine wavefields by the taper (call once per time step).
  void apply(grid::StaggeredGrid& g) const;

  [[nodiscard]] bool active() const { return active_; }

 private:
  // Per-raw-index damping factors along each axis (1.0 outside the sponge).
  std::vector<float> fx_, fy_, fz_;
  bool active_ = false;
};

}  // namespace awp::core
