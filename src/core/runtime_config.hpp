#pragma once
// Run-time simulation configuration (§III.G): "A unique feature
// facilitates a run-time simulation configuration that is able to
// determine architecture-dependent handling to maximize our solver and/or
// I/O performance. ... Alternative options also include selection of cache
// blocking size, communication models (asynchronous, computing/
// communication overlap), the selection of spatial and temporal decimation
// of outputs, serial pre-partitioned or parallel on-demand I/O, the
// inclusion of parallel checksums, and collection of performance
// characteristics."
//
// Format: one `key = value` per line, '#' comments. Keys:
//   comm            = async | sync
//   reduced_comm    = on | off
//   overlap         = on | off
//   cache_block     = off | <kblock>x<jblock>       (e.g. 16x8)
//   unroll          = on | off
//   reciprocals     = on | off
//   hybrid_threads  = <n>
//   absorbing       = sponge | pml | none
//   sponge_width    = <cells>
//   pml_width       = <cells>
//   free_surface    = on | off
//   attenuation     = on | off
//   dt              = <seconds>          (0 = CFL-derived)
//   output_sample_steps / output_decimation / output_aggregate = <n>
//   mesh_io         = prepartitioned | ondemand | direct
//   checksums       = on | off
//   health          = on | off           (numerical health guard)
//   health_interval = <steps>            (monitor scan cadence)
//   health_max_rollbacks = <n>
//   health_dt_tighten    = <factor in (0,1)>
//   health_growth_limit  = <ratio > 1>
//   health_stall_timeout = <seconds>     (rank watchdog)
//   health_watchdog_miss_threshold = <n> (consecutive missed scans before a
//                                        stall episode opens; debounce)
//   health_respawn_budget = <n>          (in-place rank respawns per attempt
//                                        before escalating; 0 = never respawn)
//   health_dt_rewiden_window = <scans>   (0 = never re-widen dt)
//   health_dt_rewiden    = <factor > 1>  (walk-back step toward baseline)
//   telemetry            = on | off      (install a telemetry session)
//   telemetry_interval   = <steps>       (0 = report only at end of run)
//   telemetry_report     = <path>        (cluster JSON report, rank 0)
//   telemetry_trace      = <path prefix> (per-rank JSONL traces)
//   telemetry_chrome     = <path>        (chrome://tracing JSON array)
//   telemetry_ring       = <spans>       (per-rank trace ring capacity)
//   sched_workers        = <n>           (scenario-service core budget)
//   sched_memory_mb      = <mb>          (0 = unlimited admission memory)
//   sched_queue_capacity = <n>           (bounded admission queue depth)
//   sched_admission      = reject | block (backpressure policy when full)
//   sched_max_retries    = <n>           (requeues before a job is poison)
//   sched_stall_timeout  = <seconds>     (per-job watchdog timeout)
//   sched_cancel_check   = <steps>       (collective cancel-poll cadence)
//   sched_retry_dt_tighten = <factor in (0,1]> (dt scale on fatal-verdict
//                                        requeue; crash/stall retries keep dt)
//   sched_respawn_budget = <n>           (in-place rank respawns per attempt;
//                                        0 = legacy immediate cancel-and-requeue)
//   sched_respawn_buddy  = on | off      (diskless buddy checkpointing)
//   sched_cache          = on | off      (memoize completed products)
//   sched_cache_dir      = <path>        ("" = in-memory cache only)
//   sched_work_dir       = <path>        (per-job checkpoints + surface files)
//   fabric_brokers       = <n>           (hazard-fabric broker count)
//   fabric_vnodes        = <n>           (consistent-hash vnodes per broker)
//   fabric_lease_seconds = <seconds>     (membership lease duration)
//   fabric_heartbeat_seconds = <seconds> (lease renewal cadence)
//   fabric_degraded_misses = <n>         (consecutive failed renewals before
//                                        a broker enters degraded mode)
//   fabric_pump_interval = <seconds>     (broker pump-loop tick)
//   fabric_forward_attempts = <n>        (util/retry attempts per forward)
//   fabric_root_dir      = <path>        (per-broker work dirs + the shared
//                                        cache tier; "" = <tmp>/awp-fabric)
//   serve_tile           = <points>      (square tile edge of the serving
//                                        tier's surface-product tiles)
//   serve_window         = <samples>     (min new surface samples between
//                                        partial-map tile publishes)
//   serve_partial        = on | off      (publish mid-run partial maps;
//                                        off = completion publishes only)
//   serve_reconcile_ticks = <n>          (broker pump ticks between serving
//                                        anti-entropy reconcile passes)
//   cycle_nx             = <nodes>       (cycle fault nodes along strike)
//   cycle_nz             = <nodes>       (cycle fault nodes down dip)
//   cycle_cell           = <meters>      (cycle-grid node spacing)
//   cycle_years          = <years>       (simulated interseismic span)
//   cycle_max_events     = <n>           (stop after n detected events;
//                                        0 = run the full span)
//   cycle_seed           = <n>           (heterogeneity seed; the whole
//                                        catalog is reproducible from it)
//   cycle_event_rate     = <m/s>         (peak slip rate opening an event
//                                        window)
//   cycle_lock_rate      = <m/s>         (peak slip rate closing/healing
//                                        the window)
//   cycle_priority       = <n>           (submission priority of bridged
//                                        rupture scenarios)

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/solver.hpp"

namespace awp::core {

enum class MeshIoMode { PrePartitioned, OnDemand, Direct };

// Scenario-service knobs (consumed by sched::ServiceConfig::fromRuntime;
// kept as a plain struct here so core does not depend on src/sched).
struct SchedKnobs {
  int workers = 4;                 // global core budget for leases
  std::size_t memoryMb = 0;        // admission memory budget (0 = unlimited)
  int queueCapacity = 16;          // bounded priority queue depth
  bool admitBlock = false;         // full queue: false = reject, true = block
  int maxRetries = 2;              // requeues before Failed (poison)
  double stallTimeoutSeconds = 30.0;  // per-job watchdog timeout
  int cancelCheckEverySteps = 2;   // collective cancel-poll cadence
  double retryDtTighten = 0.5;     // dt scale on fatal-verdict requeue
  int respawnBudget = 1;           // in-place respawns per attempt (0 = off)
  bool respawnBuddy = true;        // diskless buddy checkpointing
  bool cacheProducts = true;       // memoize completed scenario products
  std::string cacheDir;            // "" = in-memory artifact cache only
  std::string workDir;             // "" = std::filesystem::temp_directory_path
};

// Hazard-fabric knobs (consumed by fabric::FabricConfig::fromRuntime; a
// plain struct here so core does not depend on src/fabric).
struct FabricKnobs {
  int brokers = 3;                  // in-process broker instances
  int vnodes = 64;                  // consistent-hash vnodes per broker
  double leaseSeconds = 1.0;        // membership lease duration
  double heartbeatSeconds = 0.25;   // lease renewal cadence
  int degradedAfterMisses = 2;      // failed renewals before degraded mode
  double pumpIntervalSeconds = 0.01;  // broker pump-loop tick
  int forwardAttempts = 4;          // util/retry attempts per forward
  std::string rootDir;              // "" = <tmp>/awp-fabric
};

// Earthquake-cycle knobs (consumed by cycle::CycleConfig::fromRuntime; a
// plain struct here so core does not depend on src/cycle).
struct CycleKnobs {
  int nx = 96;                 // fault nodes along strike
  int nz = 32;                 // fault nodes down dip
  double cellMeters = 500.0;   // cycle-grid node spacing [m]
  double years = 600.0;        // simulated interseismic span
  int maxEvents = 0;           // stop after n detected events (0 = no cap)
  std::uint64_t seed = 1;      // heterogeneity seed
  double eventRate = 1.0e-3;   // slip rate opening an event window [m/s]
  double lockRate = 1.0e-5;    // slip rate closing (healing) the window
  int priority = 5;            // priority of bridged rupture scenarios
};

// Hazard-serving knobs (consumed by serve::ServeConfig::fromRuntime; a
// plain struct here so core does not depend on src/serve).
struct ServeKnobs {
  int tileEdge = 16;             // square tile size in surface points
  int windowSamples = 4;         // min samples between partial publishes
  bool partialPublish = true;    // mid-run folding + tile publishes
  int reconcileEveryTicks = 50;  // broker pump ticks between reconciles
};

struct RuntimeConfig {
  SolverConfig solver;
  SurfaceOutputConfig output;  // file left null; cadence fields populated
  MeshIoMode meshIo = MeshIoMode::PrePartitioned;
  bool checksums = true;
  // Telemetry session knobs (the report cadence and paths live in
  // solver.telemetry): whether the harness should install a session at
  // all, and the span ring capacity per rank.
  bool telemetryEnabled = false;
  std::size_t telemetryRingCapacity = std::size_t{1} << 16;
  // Scenario-service knobs (sched_* keys).
  SchedKnobs sched;
  // Hazard-fabric knobs (fabric_* keys).
  FabricKnobs fabric;
  // Hazard-serving knobs (serve_* keys).
  ServeKnobs serve;
  // Earthquake-cycle knobs (cycle_* keys).
  CycleKnobs cycle;
};

// Parse `key = value` text into a RuntimeConfig starting from defaults.
// Unknown keys or malformed values throw awp::Error with the line number.
RuntimeConfig parseRuntimeConfig(const std::string& text,
                                 const RuntimeConfig& defaults = {});

// Read and parse a configuration file.
RuntimeConfig loadRuntimeConfig(const std::string& path,
                                const RuntimeConfig& defaults = {});

// Architecture-dependent defaults for the Table 1 machines — the
// "determination of fundamental system attributes" of §III.G: NUMA
// machines get the asynchronous model; Lustre machines prefer
// pre-partitioned input; blocking tuned per cache hierarchy.
RuntimeConfig defaultsForMachine(const std::string& machineName);

}  // namespace awp::core
