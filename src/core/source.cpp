#include "core/source.hpp"

#include <cmath>

#include "util/error.hpp"

namespace awp::core {

double MomentRateSource::momentOf(int c, double dt) const {
  double m = 0.0;
  for (float v : mdot[static_cast<std::size_t>(c)]) m += v;
  return m * dt;
}

void SourceSet::bind(const DomainGeometry& geom) {
  local_.clear();
  for (std::size_t s = 0; s < all_.size(); ++s) {
    std::size_t li, lj, lk;
    if (geom.owns(all_[s].gi, all_[s].gj, all_[s].gk, li, lj, lk))
      local_.push_back({s, li, lj, lk});
  }
}

void SourceSet::inject(grid::StaggeredGrid& g, std::size_t step) const {
  const float scale =
      static_cast<float>(g.dt() / (g.h() * g.h() * g.h()));
  Array3f* target[6] = {&g.xx, &g.yy, &g.zz, &g.xy, &g.xz, &g.yz};
  for (const auto& b : local_) {
    const MomentRateSource& src = all_[b.index];
    for (int c = 0; c < 6; ++c) {
      const auto& series = src.mdot[static_cast<std::size_t>(c)];
      if (step >= series.size()) continue;
      (*target[c])(b.li, b.lj, b.lk) -= scale * series[step];
    }
  }
}

std::vector<float> rickerWavelet(double f0, double t0, double dt,
                                 std::size_t nSteps, double amplitude) {
  AWP_CHECK(f0 > 0.0 && dt > 0.0);
  std::vector<float> w(nSteps);
  for (std::size_t n = 0; n < nSteps; ++n) {
    const double t = static_cast<double>(n) * dt - t0;
    const double a = M_PI * f0 * t;
    w[n] = static_cast<float>(amplitude * (1.0 - 2.0 * a * a) *
                              std::exp(-a * a));
  }
  return w;
}

MomentRateSource strikeSlipPointSource(std::size_t gi, std::size_t gj,
                                       std::size_t gk,
                                       std::vector<float> momentRate) {
  MomentRateSource s;
  s.gi = gi;
  s.gj = gj;
  s.gk = gk;
  s.mdot[MXY] = std::move(momentRate);
  return s;
}

MomentRateSource explosionPointSource(std::size_t gi, std::size_t gj,
                                      std::size_t gk,
                                      std::vector<float> momentRate) {
  MomentRateSource s;
  s.gi = gi;
  s.gj = gj;
  s.gk = gk;
  s.mdot[MXX] = momentRate;
  s.mdot[MYY] = momentRate;
  s.mdot[MZZ] = std::move(momentRate);
  return s;
}

double momentMagnitude(double m0) {
  // Hanks & Kanamori: Mw = (log10 M0 [N·m] - 9.05) / 1.5.
  return (std::log10(std::max(m0, 1.0)) - 9.05) / 1.5;
}

}  // namespace awp::core
