#include "core/pml.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/hot.hpp"

namespace awp::core {

using awp::Array3f;
using grid::kHalo;
using grid::StaggeredGrid;

namespace {
constexpr float kC1 = 9.0f / 8.0f;
constexpr float kC2 = -1.0f / 24.0f;

// Split-part indices.
enum { PX = 0, PY = 1, PZ = 2 };
// Field slots within a zone's split storage.
enum { FU = 0, FV, FW, FXX, FYY, FZZ, FXY, FXZ, FYZ, kZoneFields };
}  // namespace

struct PmlBoundary::Zone {
  // Local raw-index box (half-open).
  std::size_t i0, i1, j0, j1, k0, k1;

  // Split state: split[field][part](li, lj, lk).
  Array3f split[kZoneFields][3];
  // Damping update coefficient a_d = dt/2 * (d_d + p * (d_e + d_f)).
  Array3f aCoef[3];

  [[nodiscard]] std::size_t nx() const { return i1 - i0; }
  [[nodiscard]] std::size_t ny() const { return j1 - j0; }
  [[nodiscard]] std::size_t nz() const { return k1 - k0; }
};

void PmlBoundary::buildProfiles(const DomainGeometry& geom,
                                const PmlConfig& config, double vpMax,
                                double h) {
  const int w = config.width;
  const double d0 = 3.0 * vpMax * std::log(1.0 / config.reflection) /
                    (2.0 * w * h);
  auto profile = [&](std::vector<float>& d, std::size_t n, bool lowSide,
                     bool highSide) {
    d.assign(n, 0.0f);
    for (std::size_t g = 0; g < n; ++g) {
      double depth = 0.0;
      if (lowSide && g < static_cast<std::size_t>(w))
        depth = static_cast<double>(w - g) / w;
      if (highSide && g >= n - static_cast<std::size_t>(w))
        depth = std::max(depth,
                         static_cast<double>(g - (n - w) + 1) / w);
      d[g] = static_cast<float>(d0 * depth * depth);
    }
  };
  profile(dx_, geom.global.nx, true, true);
  profile(dy_, geom.global.ny, true, true);
  profile(dz_, geom.global.nz, true, false);  // bottom only; free surface top
}

PmlBoundary::PmlBoundary(const DomainGeometry& geom, const StaggeredGrid& g,
                         const PmlConfig& config, double vpMax) {
  AWP_CHECK(config.width >= 2);
  AWP_CHECK(geom.global.nx > 2 * static_cast<std::size_t>(config.width) &&
            geom.global.ny > 2 * static_cast<std::size_t>(config.width) &&
            geom.global.nz > static_cast<std::size_t>(config.width));
  buildProfiles(geom, config, vpMax, g.h());

  const auto W = static_cast<std::size_t>(config.width);
  const auto NX = geom.global.nx, NY = geom.global.ny, NZ = geom.global.nz;

  struct GlobalBox {
    std::size_t i0, i1, j0, j1, k0, k1;
  };
  // Disjoint cover of the five PML faces (corners fold into the x zones,
  // edges into x then y; every cell still gets all three damping profiles,
  // which is what makes the M-PML corner treatment uniform).
  const GlobalBox boxes[] = {
      {0, W, 0, NY, 0, NZ},            // x-min
      {NX - W, NX, 0, NY, 0, NZ},      // x-max
      {W, NX - W, 0, W, 0, NZ},        // y-min
      {W, NX - W, NY - W, NY, 0, NZ},  // y-max
      {W, NX - W, W, NY - W, 0, W},    // z-min (bottom)
  };

  const float dt = static_cast<float>(g.dt());
  const float p = static_cast<float>(config.mpmlRatio);

  for (const auto& b : boxes) {
    // Clip against this rank's global ranges.
    const std::size_t gi0 = std::max(b.i0, geom.local.x.begin);
    const std::size_t gi1 = std::min(b.i1, geom.local.x.end);
    const std::size_t gj0 = std::max(b.j0, geom.local.y.begin);
    const std::size_t gj1 = std::min(b.j1, geom.local.y.end);
    const std::size_t gk0 = std::max(b.k0, geom.local.z.begin);
    const std::size_t gk1 = std::min(b.k1, geom.local.z.end);
    if (gi0 >= gi1 || gj0 >= gj1 || gk0 >= gk1) continue;

    auto zone = std::make_unique<Zone>();
    zone->i0 = gi0 - geom.local.x.begin + kHalo;
    zone->i1 = gi1 - geom.local.x.begin + kHalo;
    zone->j0 = gj0 - geom.local.y.begin + kHalo;
    zone->j1 = gj1 - geom.local.y.begin + kHalo;
    zone->k0 = gk0 - geom.local.z.begin + kHalo;
    zone->k1 = gk1 - geom.local.z.begin + kHalo;

    const std::size_t zx = zone->nx(), zy = zone->ny(), zz = zone->nz();
    for (auto& field : zone->split)
      for (auto& part : field) part.resize(zx, zy, zz);
    for (auto& a : zone->aCoef) a.resize(zx, zy, zz);

    for (std::size_t lk = 0; lk < zz; ++lk)
      for (std::size_t lj = 0; lj < zy; ++lj)
        for (std::size_t li = 0; li < zx; ++li) {
          const float ddx = dx_[gi0 + li];
          const float ddy = dy_[gj0 + lj];
          const float ddz = dz_[gk0 + lk];
          zone->aCoef[PX](li, lj, lk) =
              0.5f * dt * (ddx + p * (ddy + ddz));
          zone->aCoef[PY](li, lj, lk) =
              0.5f * dt * (ddy + p * (ddx + ddz));
          zone->aCoef[PZ](li, lj, lk) =
              0.5f * dt * (ddz + p * (ddx + ddy));
        }
    zones_.push_back(std::move(zone));
  }
}

PmlBoundary::~PmlBoundary() = default;

std::size_t PmlBoundary::zoneCellCount() const {
  std::size_t n = 0;
  for (const auto& z : zones_) n += z->nx() * z->ny() * z->nz();
  return n;
}

namespace {

// Damped split update: s' = ((1 - a) s + f) / (1 + a); returns s'.
inline float damp(float s, float a, float f) {
  return ((1.0f - a) * s + f) / (1.0f + a);
}

inline float muShearRecip(const StaggeredGrid& g, std::size_t ia,
                          std::size_t ja, std::size_t ka, std::size_t ib,
                          std::size_t jb, std::size_t kb, std::size_t ic,
                          std::size_t jc, std::size_t kc, std::size_t id,
                          std::size_t jd, std::size_t kd) {
  return 4.0f / (g.mui(ia, ja, ka) + g.mui(ib, jb, kb) + g.mui(ic, jc, kc) +
                 g.mui(id, jd, kd));
}

}  // namespace

AWP_HOT void PmlBoundary::updateVelocity(StaggeredGrid& g) {
  const float dth = static_cast<float>(g.dt() / g.h());
  for (auto& zp : zones_) {
    Zone& z = *zp;
    for (std::size_t k = z.k0; k < z.k1; ++k)
      for (std::size_t j = z.j0; j < z.j1; ++j)
        for (std::size_t i = z.i0; i < z.i1; ++i) {
          const std::size_t li = i - z.i0, lj = j - z.j0, lk = k - z.k0;
          const float ax = z.aCoef[PX](li, lj, lk);
          const float ay = z.aCoef[PY](li, lj, lk);
          const float az = z.aCoef[PZ](li, lj, lk);

          // --- u ---------------------------------------------------------
          {
            const float d = 0.5f * (g.rho(i, j, k) + g.rho(i - 1, j, k));
            const float fx = (dth / d) *
                             (kC1 * (g.xx(i, j, k) - g.xx(i - 1, j, k)) +
                              kC2 * (g.xx(i + 1, j, k) - g.xx(i - 2, j, k)));
            const float fy = (dth / d) *
                             (kC1 * (g.xy(i, j, k) - g.xy(i, j - 1, k)) +
                              kC2 * (g.xy(i, j + 1, k) - g.xy(i, j - 2, k)));
            const float fz = (dth / d) *
                             (kC1 * (g.xz(i, j, k) - g.xz(i, j, k - 1)) +
                              kC2 * (g.xz(i, j, k + 1) - g.xz(i, j, k - 2)));
            auto& sx = z.split[FU][PX](li, lj, lk);
            auto& sy = z.split[FU][PY](li, lj, lk);
            auto& sz = z.split[FU][PZ](li, lj, lk);
            sx = damp(sx, ax, fx);
            sy = damp(sy, ay, fy);
            sz = damp(sz, az, fz);
            g.u(i, j, k) = sx + sy + sz;
          }
          // --- v ---------------------------------------------------------
          {
            const float d = 0.5f * (g.rho(i, j, k) + g.rho(i, j + 1, k));
            const float fx = (dth / d) *
                             (kC1 * (g.xy(i + 1, j, k) - g.xy(i, j, k)) +
                              kC2 * (g.xy(i + 2, j, k) - g.xy(i - 1, j, k)));
            const float fy = (dth / d) *
                             (kC1 * (g.yy(i, j + 1, k) - g.yy(i, j, k)) +
                              kC2 * (g.yy(i, j + 2, k) - g.yy(i, j - 1, k)));
            const float fz = (dth / d) *
                             (kC1 * (g.yz(i, j, k) - g.yz(i, j, k - 1)) +
                              kC2 * (g.yz(i, j, k + 1) - g.yz(i, j, k - 2)));
            auto& sx = z.split[FV][PX](li, lj, lk);
            auto& sy = z.split[FV][PY](li, lj, lk);
            auto& sz = z.split[FV][PZ](li, lj, lk);
            sx = damp(sx, ax, fx);
            sy = damp(sy, ay, fy);
            sz = damp(sz, az, fz);
            g.v(i, j, k) = sx + sy + sz;
          }
          // --- w ---------------------------------------------------------
          {
            const float d = 0.5f * (g.rho(i, j, k) + g.rho(i, j, k + 1));
            const float fx = (dth / d) *
                             (kC1 * (g.xz(i + 1, j, k) - g.xz(i, j, k)) +
                              kC2 * (g.xz(i + 2, j, k) - g.xz(i - 1, j, k)));
            const float fy = (dth / d) *
                             (kC1 * (g.yz(i, j, k) - g.yz(i, j - 1, k)) +
                              kC2 * (g.yz(i, j + 1, k) - g.yz(i, j - 2, k)));
            const float fz = (dth / d) *
                             (kC1 * (g.zz(i, j, k + 1) - g.zz(i, j, k)) +
                              kC2 * (g.zz(i, j, k + 2) - g.zz(i, j, k - 1)));
            auto& sx = z.split[FW][PX](li, lj, lk);
            auto& sy = z.split[FW][PY](li, lj, lk);
            auto& sz = z.split[FW][PZ](li, lj, lk);
            sx = damp(sx, ax, fx);
            sy = damp(sy, ay, fy);
            sz = damp(sz, az, fz);
            g.w(i, j, k) = sx + sy + sz;
          }
        }
  }
}

AWP_HOT void PmlBoundary::updateStress(StaggeredGrid& g) {
  const float dth = static_cast<float>(g.dt() / g.h());
  for (auto& zp : zones_) {
    Zone& z = *zp;
    for (std::size_t k = z.k0; k < z.k1; ++k)
      for (std::size_t j = z.j0; j < z.j1; ++j)
        for (std::size_t i = z.i0; i < z.i1; ++i) {
          const std::size_t li = i - z.i0, lj = j - z.j0, lk = k - z.k0;
          const float ax = z.aCoef[PX](li, lj, lk);
          const float ay = z.aCoef[PY](li, lj, lk);
          const float az = z.aCoef[PZ](li, lj, lk);

          const float exx = kC1 * (g.u(i + 1, j, k) - g.u(i, j, k)) +
                            kC2 * (g.u(i + 2, j, k) - g.u(i - 1, j, k));
          const float eyy = kC1 * (g.v(i, j, k) - g.v(i, j - 1, k)) +
                            kC2 * (g.v(i, j + 1, k) - g.v(i, j - 2, k));
          const float ezz = kC1 * (g.w(i, j, k) - g.w(i, j, k - 1)) +
                            kC2 * (g.w(i, j, k + 1) - g.w(i, j, k - 2));
          const float l = g.lam(i, j, k);
          const float lp2m = l + 2.0f * g.mu(i, j, k);

          auto splitNormal = [&](int field, float cx, float cy, float cz,
                                 Array3f& target) {
            auto& sx = z.split[field][PX](li, lj, lk);
            auto& sy = z.split[field][PY](li, lj, lk);
            auto& sz = z.split[field][PZ](li, lj, lk);
            sx = damp(sx, ax, dth * cx * exx);
            sy = damp(sy, ay, dth * cy * eyy);
            sz = damp(sz, az, dth * cz * ezz);
            target(i, j, k) = sx + sy + sz;
          };
          splitNormal(FXX, lp2m, l, l, g.xx);
          splitNormal(FYY, l, lp2m, l, g.yy);
          splitNormal(FZZ, l, l, lp2m, g.zz);

          // --- xy --------------------------------------------------------
          {
            const float m = muShearRecip(g, i - 1, j, k, i, j, k, i - 1,
                                         j + 1, k, i, j + 1, k);
            const float dyu = kC1 * (g.u(i, j + 1, k) - g.u(i, j, k)) +
                              kC2 * (g.u(i, j + 2, k) - g.u(i, j - 1, k));
            const float dxv = kC1 * (g.v(i, j, k) - g.v(i - 1, j, k)) +
                              kC2 * (g.v(i + 1, j, k) - g.v(i - 2, j, k));
            auto& sx = z.split[FXY][PX](li, lj, lk);
            auto& sy = z.split[FXY][PY](li, lj, lk);
            sx = damp(sx, ax, dth * m * dxv);
            sy = damp(sy, ay, dth * m * dyu);
            g.xy(i, j, k) = sx + sy;
          }
          // --- xz --------------------------------------------------------
          {
            const float m = muShearRecip(g, i - 1, j, k, i, j, k, i - 1, j,
                                         k + 1, i, j, k + 1);
            const float dzu = kC1 * (g.u(i, j, k + 1) - g.u(i, j, k)) +
                              kC2 * (g.u(i, j, k + 2) - g.u(i, j, k - 1));
            const float dxw = kC1 * (g.w(i, j, k) - g.w(i - 1, j, k)) +
                              kC2 * (g.w(i + 1, j, k) - g.w(i - 2, j, k));
            auto& sx = z.split[FXZ][PX](li, lj, lk);
            auto& sz = z.split[FXZ][PZ](li, lj, lk);
            sx = damp(sx, ax, dth * m * dxw);
            sz = damp(sz, az, dth * m * dzu);
            g.xz(i, j, k) = sx + sz;
          }
          // --- yz --------------------------------------------------------
          {
            const float m = muShearRecip(g, i, j, k, i, j + 1, k, i, j,
                                         k + 1, i, j + 1, k + 1);
            const float dzv = kC1 * (g.v(i, j, k + 1) - g.v(i, j, k)) +
                              kC2 * (g.v(i, j, k + 2) - g.v(i, j, k - 1));
            const float dyw = kC1 * (g.w(i, j + 1, k) - g.w(i, j, k)) +
                              kC2 * (g.w(i, j + 2, k) - g.w(i, j - 1, k));
            auto& sy = z.split[FYZ][PY](li, lj, lk);
            auto& sz = z.split[FYZ][PZ](li, lj, lk);
            sy = damp(sy, ay, dth * m * dyw);
            sz = damp(sz, az, dth * m * dzv);
            g.yz(i, j, k) = sy + sz;
          }
        }
  }
}

}  // namespace awp::core
