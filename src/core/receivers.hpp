#pragma once
// Surface observation: seismogram receivers at named sites (Fig 21) and
// the running peak-ground-velocity maps the science analyses are built on
// (PGV in Figs 3, 15, 17; PGVH — root sum of squares of the horizontal
// components — in Fig 21).

#include <cstdint>
#include <string>
#include <vector>

#include "core/geometry.hpp"
#include "grid/staggered_grid.hpp"
#include "vcluster/cart.hpp"
#include "vcluster/comm.hpp"

namespace awp::core {

struct SeismogramTrace {
  std::string name;
  std::size_t gi = 0, gj = 0;
  std::vector<float> u, v, w;  // surface velocities per recorded step
};

class ReceiverSet {
 public:
  void add(std::string name, std::size_t gi, std::size_t gj);
  void bind(const DomainGeometry& geom);

  // Record surface velocities for locally owned receivers at the given
  // simulation step. Step-indexed and idempotent: a rollback replay that
  // revisits recorded steps overwrites them in place instead of appending
  // duplicates, so traces stay one-sample-per-step.
  void record(const grid::StaggeredGrid& g, std::size_t step);
  // Append at the next step index (single-pass runs with no rollback).
  void record(const grid::StaggeredGrid& g) { record(g, recordedSteps()); }

  // Steps recorded so far (traces grow in lockstep).
  [[nodiscard]] std::size_t recordedSteps() const {
    return traces_.empty() ? 0 : traces_.front().u.size();
  }
  [[nodiscard]] std::uint64_t samplesRewritten() const {
    return samplesRewritten_;
  }

  // Collective: gather all traces to rank 0 (other ranks get {}).
  [[nodiscard]] std::vector<SeismogramTrace> gather(
      vcluster::Communicator& comm) const;

  [[nodiscard]] const std::vector<SeismogramTrace>& localTraces() const {
    return traces_;
  }

 private:
  struct Pending {
    std::string name;
    std::size_t gi, gj;
  };
  std::vector<Pending> pending_;
  std::vector<SeismogramTrace> traces_;   // bound, locally owned
  std::vector<std::size_t> li_, lj_, lk_;  // local raw indices per trace
  std::uint64_t samplesRewritten_ = 0;
};

// Per-surface-cell peak velocity accumulation.
class SurfaceMonitor {
 public:
  explicit SurfaceMonitor(const DomainGeometry& geom);

  void accumulate(const grid::StaggeredGrid& g);

  // Collective: assemble the global PGVH map (nx-by-ny, row-major, x
  // fastest) on rank 0; other ranks get an empty vector.
  [[nodiscard]] std::vector<float> gatherPgvh(
      vcluster::Communicator& comm, const vcluster::CartTopology& topo) const;
  // Same for the vertical-included peak |v|.
  [[nodiscard]] std::vector<float> gatherPgv(
      vcluster::Communicator& comm, const vcluster::CartTopology& topo) const;

  [[nodiscard]] bool active() const { return active_; }

 private:
  std::vector<float> gatherMap(vcluster::Communicator& comm,
                               const vcluster::CartTopology& topo,
                               const std::vector<float>& local) const;

  DomainGeometry geom_;
  bool active_ = false;       // this rank owns part of the surface
  std::vector<float> pgvh_;   // local nx*ny, x fastest
  std::vector<float> pgv_;
};

}  // namespace awp::core
