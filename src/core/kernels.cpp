#include "core/kernels.hpp"

#include "util/error.hpp"
#include "util/hot.hpp"

namespace awp::core {

namespace {

using grid::StaggeredGrid;

constexpr float kC1 = 9.0f / 8.0f;
constexpr float kC2 = -1.0f / 24.0f;

// ---------------------------------------------------------------------------
// Velocity rows. dth = dt / h.
// ---------------------------------------------------------------------------

inline void rowU(StaggeredGrid& g, std::size_t j, std::size_t k,
                 std::size_t i0, std::size_t i1, float dth) {
  auto& u = g.u;
  const auto& xx = g.xx;
  const auto& xy = g.xy;
  const auto& xz = g.xz;
  const auto& rho = g.rho;
  for (std::size_t i = i0; i < i1; ++i) {
    const float d = 0.5f * (rho(i, j, k) + rho(i - 1, j, k));
    u(i, j, k) +=
        (dth / d) *
        (kC1 * (xx(i, j, k) - xx(i - 1, j, k)) +
         kC2 * (xx(i + 1, j, k) - xx(i - 2, j, k)) +
         kC1 * (xy(i, j, k) - xy(i, j - 1, k)) +
         kC2 * (xy(i, j + 1, k) - xy(i, j - 2, k)) +
         kC1 * (xz(i, j, k) - xz(i, j, k - 1)) +
         kC2 * (xz(i, j, k + 1) - xz(i, j, k - 2)));
  }
}

inline void rowV(StaggeredGrid& g, std::size_t j, std::size_t k,
                 std::size_t i0, std::size_t i1, float dth) {
  auto& v = g.v;
  const auto& xy = g.xy;
  const auto& yy = g.yy;
  const auto& yz = g.yz;
  const auto& rho = g.rho;
  for (std::size_t i = i0; i < i1; ++i) {
    const float d = 0.5f * (rho(i, j, k) + rho(i, j + 1, k));
    v(i, j, k) +=
        (dth / d) *
        (kC1 * (xy(i + 1, j, k) - xy(i, j, k)) +
         kC2 * (xy(i + 2, j, k) - xy(i - 1, j, k)) +
         kC1 * (yy(i, j + 1, k) - yy(i, j, k)) +
         kC2 * (yy(i, j + 2, k) - yy(i, j - 1, k)) +
         kC1 * (yz(i, j, k) - yz(i, j, k - 1)) +
         kC2 * (yz(i, j, k + 1) - yz(i, j, k - 2)));
  }
}

inline void rowW(StaggeredGrid& g, std::size_t j, std::size_t k,
                 std::size_t i0, std::size_t i1, float dth) {
  auto& w = g.w;
  const auto& xz = g.xz;
  const auto& yz = g.yz;
  const auto& zz = g.zz;
  const auto& rho = g.rho;
  for (std::size_t i = i0; i < i1; ++i) {
    const float d = 0.5f * (rho(i, j, k) + rho(i, j, k + 1));
    w(i, j, k) +=
        (dth / d) *
        (kC1 * (xz(i + 1, j, k) - xz(i, j, k)) +
         kC2 * (xz(i + 2, j, k) - xz(i - 1, j, k)) +
         kC1 * (yz(i, j, k) - yz(i, j - 1, k)) +
         kC2 * (yz(i, j + 1, k) - yz(i, j - 2, k)) +
         kC1 * (zz(i, j, k + 1) - zz(i, j, k)) +
         kC2 * (zz(i, j, k + 2) - zz(i, j, k - 1)));
  }
}

// ---------------------------------------------------------------------------
// Memory-variable update for one stress component (coarse-grained constant
// Q, §II.A). `a` is the elastic stress increment for this step; returns the
// anelastic correction to add to the stress.
// ---------------------------------------------------------------------------

inline float attenuate(float& r, float tau, float qinv, float a, float dt) {
  const float htau = 0.5f * dt / tau;
  const float rNew = (r * (1.0f - htau) - qinv * a / tau) / (1.0f + htau);
  const float corr = 0.5f * dt * (rNew + r);
  r = rNew;
  return corr;
}

// ---------------------------------------------------------------------------
// Stress rows. Template parameters select the §IV.B arithmetic variant and
// whether attenuation is active (compile-time to keep the inner loop tight).
// ---------------------------------------------------------------------------

template <bool Atten>
inline void rowNormal(StaggeredGrid& g, std::size_t j, std::size_t k,
                      std::size_t i0, std::size_t i1, float dth, float dt) {
  const auto& u = g.u;
  const auto& v = g.v;
  const auto& w = g.w;
  auto& xx = g.xx;
  auto& yy = g.yy;
  auto& zz = g.zz;
  const auto& lam = g.lam;
  const auto& mu = g.mu;
  for (std::size_t i = i0; i < i1; ++i) {
    const float exx = kC1 * (u(i + 1, j, k) - u(i, j, k)) +
                      kC2 * (u(i + 2, j, k) - u(i - 1, j, k));
    const float eyy = kC1 * (v(i, j, k) - v(i, j - 1, k)) +
                      kC2 * (v(i, j + 1, k) - v(i, j - 2, k));
    const float ezz = kC1 * (w(i, j, k) - w(i, j, k - 1)) +
                      kC2 * (w(i, j, k + 1) - w(i, j, k - 2));
    const float tr = exx + eyy + ezz;
    const float l = lam(i, j, k);
    const float m2 = 2.0f * mu(i, j, k);
    float axx = dth * (l * tr + m2 * exx);
    float ayy = dth * (l * tr + m2 * eyy);
    float azz = dth * (l * tr + m2 * ezz);
    if constexpr (Atten) {
      const float tau = g.tauSigma(i, j, k);
      const float qinv = g.qpInv(i, j, k);
      axx += attenuate(g.rxx(i, j, k), tau, qinv, axx, dt);
      ayy += attenuate(g.ryy(i, j, k), tau, qinv, ayy, dt);
      azz += attenuate(g.rzz(i, j, k), tau, qinv, azz, dt);
    }
    xx(i, j, k) += axx;
    yy(i, j, k) += ayy;
    zz(i, j, k) += azz;
  }
}

// Harmonic mean of μ over the 4 cells adjacent to a shear-stress node.
// Recip = true reads the stored reciprocals (1 division); false recomputes
// 1/μ per use (5 divisions) — the pre-v6.0 arithmetic (§IV.B).
template <bool Recip>
inline float muShear(const StaggeredGrid& g, std::size_t ia, std::size_t ja,
                     std::size_t ka, std::size_t ib, std::size_t jb,
                     std::size_t kb, std::size_t ic, std::size_t jc,
                     std::size_t kc, std::size_t id, std::size_t jd,
                     std::size_t kd) {
  if constexpr (Recip) {
    return 4.0f / (g.mui(ia, ja, ka) + g.mui(ib, jb, kb) +
                   g.mui(ic, jc, kc) + g.mui(id, jd, kd));
  } else {
    return 4.0f / (1.0f / g.mu(ia, ja, ka) + 1.0f / g.mu(ib, jb, kb) +
                   1.0f / g.mu(ic, jc, kc) + 1.0f / g.mu(id, jd, kd));
  }
}

template <bool Recip, bool Atten>
inline void pointXY(StaggeredGrid& g, std::size_t i, std::size_t j,
                    std::size_t k, float dth, float dt) {
  const float m = muShear<Recip>(g, i - 1, j, k, i, j, k, i - 1, j + 1, k, i,
                                 j + 1, k);
  const float exy = kC1 * (g.u(i, j + 1, k) - g.u(i, j, k)) +
                    kC2 * (g.u(i, j + 2, k) - g.u(i, j - 1, k)) +
                    kC1 * (g.v(i, j, k) - g.v(i - 1, j, k)) +
                    kC2 * (g.v(i + 1, j, k) - g.v(i - 2, j, k));
  float a = dth * m * exy;
  if constexpr (Atten) {
    a += attenuate(g.rxy(i, j, k), g.tauSigma(i, j, k), g.qsInv(i, j, k), a,
                   dt);
  }
  g.xy(i, j, k) += a;
}

template <bool Recip, bool Atten>
inline void pointXZ(StaggeredGrid& g, std::size_t i, std::size_t j,
                    std::size_t k, float dth, float dt) {
  const float m = muShear<Recip>(g, i - 1, j, k, i, j, k, i - 1, j, k + 1, i,
                                 j, k + 1);
  const float exz = kC1 * (g.u(i, j, k + 1) - g.u(i, j, k)) +
                    kC2 * (g.u(i, j, k + 2) - g.u(i, j, k - 1)) +
                    kC1 * (g.w(i, j, k) - g.w(i - 1, j, k)) +
                    kC2 * (g.w(i + 1, j, k) - g.w(i - 2, j, k));
  float a = dth * m * exz;
  if constexpr (Atten) {
    a += attenuate(g.rxz(i, j, k), g.tauSigma(i, j, k), g.qsInv(i, j, k), a,
                   dt);
  }
  g.xz(i, j, k) += a;
}

template <bool Recip, bool Atten>
inline void pointYZ(StaggeredGrid& g, std::size_t i, std::size_t j,
                    std::size_t k, float dth, float dt) {
  const float m = muShear<Recip>(g, i, j, k, i, j + 1, k, i, j, k + 1, i,
                                 j + 1, k + 1);
  const float eyz = kC1 * (g.v(i, j, k + 1) - g.v(i, j, k)) +
                    kC2 * (g.v(i, j, k + 2) - g.v(i, j, k - 1)) +
                    kC1 * (g.w(i, j + 1, k) - g.w(i, j, k)) +
                    kC2 * (g.w(i, j + 2, k) - g.w(i, j - 1, k));
  float a = dth * m * eyz;
  if constexpr (Atten) {
    a += attenuate(g.ryz(i, j, k), g.tauSigma(i, j, k), g.qsInv(i, j, k), a,
                   dt);
  }
  g.yz(i, j, k) += a;
}

template <bool Recip, bool Atten>
inline void rowXY(StaggeredGrid& g, std::size_t j, std::size_t k,
                  std::size_t i0, std::size_t i1, float dth, float dt,
                  bool unrolled) {
  if (unrolled) {
    // Manual 2x unroll — "unrolling by 2 iterations gives the best
    // performance for the computing-intensive subroutines xyq and xzq".
    std::size_t i = i0;
    for (; i + 1 < i1; i += 2) {
      pointXY<Recip, Atten>(g, i, j, k, dth, dt);
      pointXY<Recip, Atten>(g, i + 1, j, k, dth, dt);
    }
    if (i < i1) pointXY<Recip, Atten>(g, i, j, k, dth, dt);
  } else {
    for (std::size_t i = i0; i < i1; ++i)
      pointXY<Recip, Atten>(g, i, j, k, dth, dt);
  }
}

template <bool Recip, bool Atten>
inline void rowXZ(StaggeredGrid& g, std::size_t j, std::size_t k,
                  std::size_t i0, std::size_t i1, float dth, float dt,
                  bool unrolled) {
  if (unrolled) {
    std::size_t i = i0;
    for (; i + 1 < i1; i += 2) {
      pointXZ<Recip, Atten>(g, i, j, k, dth, dt);
      pointXZ<Recip, Atten>(g, i + 1, j, k, dth, dt);
    }
    if (i < i1) pointXZ<Recip, Atten>(g, i, j, k, dth, dt);
  } else {
    for (std::size_t i = i0; i < i1; ++i)
      pointXZ<Recip, Atten>(g, i, j, k, dth, dt);
  }
}

template <bool Recip, bool Atten>
inline void rowYZ(StaggeredGrid& g, std::size_t j, std::size_t k,
                  std::size_t i0, std::size_t i1, float dth, float dt) {
  for (std::size_t i = i0; i < i1; ++i)
    pointYZ<Recip, Atten>(g, i, j, k, dth, dt);
}

// ---------------------------------------------------------------------------
// Loop drivers: plain j/k double loop, or the §IV.B kblock/jblock tiling
// ("the values of kblock and jblock are chosen to guarantee that the
// operands on subsequent planes are still in cache").
// ---------------------------------------------------------------------------

template <typename RowFn>
AWP_HOT void driveRange(std::size_t k0, std::size_t k1, const Region& r,
                const KernelOptions& o, RowFn&& row) {
  if (!o.cacheBlocked) {
    for (std::size_t k = k0; k < k1; ++k)
      for (std::size_t j = r.j0; j < r.j1; ++j) row(j, k);
    return;
  }
  const auto kb = static_cast<std::size_t>(o.kblock);
  const auto jb = static_cast<std::size_t>(o.jblock);
  for (std::size_t kk = k0; kk < k1; kk += kb)
    for (std::size_t jj = r.j0; jj < r.j1; jj += jb)
      for (std::size_t k = kk; k < std::min(kk + kb, k1); ++k)
        for (std::size_t j = jj; j < std::min(jj + jb, r.j1); ++j) row(j, k);
}

template <typename RowFn>
AWP_HOT void driveLoops(const Region& r, const KernelOptions& o, RowFn&& row) {
  if (o.pool == nullptr) {
    driveRange(r.k0, r.k1, r, o, row);
    return;
  }
  // Hybrid mode (§IV.D): k-slabs across the intra-rank threads. Rows only
  // write their own (j, k) cells, so slabs are data-race free.
  o.pool->parallelFor(r.k0, r.k1,
                      [&](std::size_t k0, std::size_t k1) {
                        driveRange(k0, k1, r, o, row);
                      });
}

}  // namespace

AWP_HOT void updateVelocity(grid::StaggeredGrid& g, VelocityComponent comp,
                    const KernelOptions& opts, const Region& r) {
  const float dth = static_cast<float>(g.dt() / g.h());
  switch (comp) {
    case VelocityComponent::U:
      driveLoops(r, opts,
                 [&](std::size_t j, std::size_t k) {
                   rowU(g, j, k, r.i0, r.i1, dth);
                 });
      break;
    case VelocityComponent::V:
      driveLoops(r, opts,
                 [&](std::size_t j, std::size_t k) {
                   rowV(g, j, k, r.i0, r.i1, dth);
                 });
      break;
    case VelocityComponent::W:
      driveLoops(r, opts,
                 [&](std::size_t j, std::size_t k) {
                   rowW(g, j, k, r.i0, r.i1, dth);
                 });
      break;
  }
}

AWP_HOT void updateVelocity(grid::StaggeredGrid& g, const KernelOptions& opts) {
  const Region r = Region::interior(g);
  updateVelocity(g, VelocityComponent::U, opts, r);
  updateVelocity(g, VelocityComponent::V, opts, r);
  updateVelocity(g, VelocityComponent::W, opts, r);
}

AWP_HOT void updateStress(grid::StaggeredGrid& g, StressGroup group,
                  const KernelOptions& opts, const Region& r) {
  const float dth = static_cast<float>(g.dt() / g.h());
  const float dt = static_cast<float>(g.dt());
  const bool atten = g.attenuation().enabled;
  const bool recip = opts.useReciprocals;
  const bool unrolled = opts.unrolled;

  auto dispatch = [&](auto&& rowFn) {
    driveLoops(r, opts, rowFn);
  };

  switch (group) {
    case StressGroup::Normal:
      if (atten)
        dispatch([&](std::size_t j, std::size_t k) {
          rowNormal<true>(g, j, k, r.i0, r.i1, dth, dt);
        });
      else
        dispatch([&](std::size_t j, std::size_t k) {
          rowNormal<false>(g, j, k, r.i0, r.i1, dth, dt);
        });
      break;
    case StressGroup::XY:
      if (recip && atten)
        dispatch([&](std::size_t j, std::size_t k) {
          rowXY<true, true>(g, j, k, r.i0, r.i1, dth, dt, unrolled);
        });
      else if (recip && !atten)
        dispatch([&](std::size_t j, std::size_t k) {
          rowXY<true, false>(g, j, k, r.i0, r.i1, dth, dt, unrolled);
        });
      else if (!recip && atten)
        dispatch([&](std::size_t j, std::size_t k) {
          rowXY<false, true>(g, j, k, r.i0, r.i1, dth, dt, unrolled);
        });
      else
        dispatch([&](std::size_t j, std::size_t k) {
          rowXY<false, false>(g, j, k, r.i0, r.i1, dth, dt, unrolled);
        });
      break;
    case StressGroup::XZ:
      if (recip && atten)
        dispatch([&](std::size_t j, std::size_t k) {
          rowXZ<true, true>(g, j, k, r.i0, r.i1, dth, dt, unrolled);
        });
      else if (recip && !atten)
        dispatch([&](std::size_t j, std::size_t k) {
          rowXZ<true, false>(g, j, k, r.i0, r.i1, dth, dt, unrolled);
        });
      else if (!recip && atten)
        dispatch([&](std::size_t j, std::size_t k) {
          rowXZ<false, true>(g, j, k, r.i0, r.i1, dth, dt, unrolled);
        });
      else
        dispatch([&](std::size_t j, std::size_t k) {
          rowXZ<false, false>(g, j, k, r.i0, r.i1, dth, dt, unrolled);
        });
      break;
    case StressGroup::YZ:
      if (recip && atten)
        dispatch([&](std::size_t j, std::size_t k) {
          rowYZ<true, true>(g, j, k, r.i0, r.i1, dth, dt);
        });
      else if (recip && !atten)
        dispatch([&](std::size_t j, std::size_t k) {
          rowYZ<true, false>(g, j, k, r.i0, r.i1, dth, dt);
        });
      else if (!recip && atten)
        dispatch([&](std::size_t j, std::size_t k) {
          rowYZ<false, true>(g, j, k, r.i0, r.i1, dth, dt);
        });
      else
        dispatch([&](std::size_t j, std::size_t k) {
          rowYZ<false, false>(g, j, k, r.i0, r.i1, dth, dt);
        });
      break;
  }
}

AWP_HOT void updateStress(grid::StaggeredGrid& g, const KernelOptions& opts) {
  const Region r = Region::interior(g);
  updateStress(g, StressGroup::Normal, opts, r);
  updateStress(g, StressGroup::XY, opts, r);
  updateStress(g, StressGroup::XZ, opts, r);
  updateStress(g, StressGroup::YZ, opts, r);
}

double velocityFlopsPerPoint() {
  // Per component: 6 stencil multiplies, 11 adds/subs, density average
  // (2), divide (1), multiply-accumulate (2) ~ 22; three components.
  return 3 * 22.0;
}

double stressFlopsPerPoint(bool attenuation) {
  // Normals: 3 strains (6 ops each) + trace (2) + 3 updates (~6 each) = 38.
  // Shears: 3 x (strain 12 + harmonic mean 5 + update 4) = 63.
  double f = 38.0 + 63.0;
  if (attenuation) f += 6 * 10.0;  // memory-variable update per component
  return f;
}

double flopsPerPointPerStep(bool attenuation) {
  return velocityFlopsPerPoint() + stressFlopsPerPoint(attenuation);
}

}  // namespace awp::core
