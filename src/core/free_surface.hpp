#pragma once
// FS2 free-surface boundary condition (§II.E): a zero-stress condition
// "defined at the vertical level of the σxz and σyz stresses"
// (Gottschammer & Olsen 2001). In our staggering w, xz, yz sit at
// k + 1/2, so the free surface coincides with the topmost xz/yz/w plane:
//   * σxz = σyz = 0 on the surface plane, antisymmetric images above;
//   * σzz antisymmetric about the surface (it sits half a cell below);
//   * the w image above the surface is set from the zero-σzz constraint
//     ezz = -λ/(λ+2μ)(exx + eyy).

#include "core/geometry.hpp"
#include "grid/staggered_grid.hpp"

namespace awp::core {

class FreeSurface {
 public:
  explicit FreeSurface(const DomainGeometry& geom, bool enabled = true)
      : active_(enabled && geom.touchesTop()) {}

  // Call after the velocity update + exchange, before the stress update.
  void applyVelocityImages(grid::StaggeredGrid& g) const;
  // Call after the stress update, before the next velocity update.
  void applyStressImages(grid::StaggeredGrid& g) const;

  [[nodiscard]] bool active() const { return active_; }

 private:
  bool active_;
};

}  // namespace awp::core
