#pragma once
// Kinematic source injection: moment-rate time histories at grid points
// (sub-faults), the form the AWM consumes ("The AWM requires a kinematic
// source description formulated as moment rate time histories at a finite
// number of points", §III.D). The moment-rate tensor rate is added to the
// stresses each step: σ_c -= ṁ_c(t) · dt / h³.

#include <array>
#include <string>
#include <vector>

#include "core/geometry.hpp"
#include "grid/staggered_grid.hpp"

namespace awp::core {

// Moment tensor component order used throughout.
enum MomentComponent { MXX = 0, MYY, MZZ, MXY, MXZ, MYZ };

struct MomentRateSource {
  std::size_t gi = 0, gj = 0, gk = 0;  // global grid indices
  // Moment-rate histories [N·m/s], sampled at the solver dt. Components
  // may be empty (treated as zero).
  std::array<std::vector<float>, 6> mdot;

  [[nodiscard]] std::size_t stepCount() const {
    std::size_t n = 0;
    for (const auto& c : mdot) n = std::max(n, c.size());
    return n;
  }
  // Total moment released through component c (time-integrated rate).
  [[nodiscard]] double momentOf(int c, double dt) const;
};

class SourceSet {
 public:
  void add(MomentRateSource src) { all_.push_back(std::move(src)); }

  // Select the sources owned by this rank and precompute local indices.
  void bind(const DomainGeometry& geom);

  // Add this step's moment rates into the local stresses.
  void inject(grid::StaggeredGrid& g, std::size_t step) const;

  [[nodiscard]] std::size_t totalCount() const { return all_.size(); }
  [[nodiscard]] std::size_t localCount() const { return local_.size(); }
  [[nodiscard]] const std::vector<MomentRateSource>& sources() const {
    return all_;
  }

 private:
  struct Bound {
    std::size_t index;       // into all_
    std::size_t li, lj, lk;  // local raw indices
  };
  std::vector<MomentRateSource> all_;
  std::vector<Bound> local_;
};

// Ricker wavelet with peak frequency f0, delayed by t0, length nSteps,
// scaled by `amplitude` (a peak moment rate when used as a source).
std::vector<float> rickerWavelet(double f0, double t0, double dt,
                                 std::size_t nSteps, double amplitude = 1.0);

// A strike-slip double-couple point source: slip along x on a fault plane
// with normal y — moment rate enters σxy. `momentRate` is the scalar
// moment-rate history Ṁ0(t); total moment is its time integral.
MomentRateSource strikeSlipPointSource(std::size_t gi, std::size_t gj,
                                       std::size_t gk,
                                       std::vector<float> momentRate);

// An isotropic (explosion) source — equal rate into σxx, σyy, σzz.
MomentRateSource explosionPointSource(std::size_t gi, std::size_t gj,
                                      std::size_t gk,
                                      std::vector<float> momentRate);

// Moment magnitude Mw from a seismic moment M0 [N·m] (Hanks & Kanamori).
double momentMagnitude(double m0);

}  // namespace awp::core
