#pragma once
// Split-field multiaxial PML absorbing boundaries (§II.D). Each wavefield
// equation is split into per-direction parts F = F_x + F_y + F_z, where
// F_d collects the terms containing ∂_d; a damping d_d(pos) is applied to
// the F_d equation. The multiaxial variant (Meza-Fajardo & Papageorgiou
// 2008) adds a proportional damping p·(d_e + d_f) from the other two axes
// to stabilize the scheme in heterogeneous media; M8 used M-PMLs of width
// 10 on the sides and bottom of the grid.
//
// Implementation: zones on the five non-top faces own the split storage;
// the unsplit grid arrays stay authoritative (the zone update recomputes
// its cells from the split state and writes the sums back), so interior
// kernels and halo exchange are untouched.

#include <memory>
#include <vector>

#include "core/geometry.hpp"
#include "grid/staggered_grid.hpp"

namespace awp::core {

struct PmlConfig {
  int width = 10;          // cells (M8 used 10, §II.D)
  double reflection = 1e-4;  // target theoretical reflection coefficient
  double mpmlRatio = 0.15;   // proportional damping ratio p (0 = pure PML)
};

class PmlBoundary {
 public:
  // vpMax: fastest P speed in the model (sets the damping amplitude d0).
  PmlBoundary(const DomainGeometry& geom, const grid::StaggeredGrid& g,
              const PmlConfig& config, double vpMax);
  ~PmlBoundary();

  // Replace the interior-kernel results inside the zones with the damped
  // split-field updates. Call right after the corresponding kernel.
  void updateVelocity(grid::StaggeredGrid& g);
  void updateStress(grid::StaggeredGrid& g);

  [[nodiscard]] bool active() const { return !zones_.empty(); }
  [[nodiscard]] std::size_t zoneCellCount() const;

 private:
  struct Zone;
  std::vector<std::unique_ptr<Zone>> zones_;

  // Damping profiles indexed by *global* cell index along each axis.
  std::vector<float> dx_, dy_, dz_;

  void buildProfiles(const DomainGeometry& geom, const PmlConfig& config,
                     double vpMax, double h);
};

}  // namespace awp::core
