#include "core/sponge.hpp"

#include <cmath>
#include "util/hot.hpp"

namespace awp::core {

using grid::kHalo;

SpongeLayer::SpongeLayer(const DomainGeometry& geom,
                         const grid::StaggeredGrid& g, int width,
                         double amplitude) {
  const double a = amplitude * 20.0 / width;  // keep edge damping ~constant
  auto taper = [&](double cellsFromBoundary) {
    if (cellsFromBoundary >= width) return 1.0;
    const double d = a * (width - cellsFromBoundary);
    return std::exp(-d * d);
  };

  auto build = [&](std::vector<float>& f, std::size_t rawExtent,
                   std::size_t globalBegin, std::size_t globalExtent,
                   bool damphi) {
    f.assign(rawExtent, 1.0f);
    for (std::size_t r = 0; r < rawExtent; ++r) {
      // Global cell index (halo cells clamp to the nearest interior cell).
      const double gl = static_cast<double>(globalBegin) +
                        static_cast<double>(r) - kHalo;
      double v = taper(std::max(0.0, gl));
      if (damphi) {
        const double fromHi = static_cast<double>(globalExtent) - 1.0 - gl;
        v = std::min(v, taper(std::max(0.0, fromHi)));
      }
      f[r] = static_cast<float>(v);
      if (v < 1.0) active_ = true;
    }
  };

  build(fx_, g.sx(), geom.local.x.begin, geom.global.nx, true);
  build(fy_, g.sy(), geom.local.y.begin, geom.global.ny, true);
  // No damping at the top (free surface): only the bottom is tapered in z.
  build(fz_, g.sz(), geom.local.z.begin, geom.global.nz, false);
}

AWP_HOT void SpongeLayer::apply(grid::StaggeredGrid& g) const {
  if (!active_) return;
  const std::size_t ax = g.sx(), ay = g.sy(), az = g.sz();
  Array3f* fields[] = {&g.u,  &g.v,  &g.w,  &g.xx, &g.yy,
                             &g.zz, &g.xy, &g.xz, &g.yz};
  for (auto* f : fields) {
    float* data = f->data();
    std::size_t n = 0;
    for (std::size_t k = 0; k < az; ++k) {
      const float fk = fz_[k];
      for (std::size_t j = 0; j < ay; ++j) {
        const float fjk = fy_[j] * fk;
        if (fjk == 1.0f) {
          // Fast path: only x damping (or none) on this row.
          for (std::size_t i = 0; i < ax; ++i, ++n) data[n] *= fx_[i];
        } else {
          for (std::size_t i = 0; i < ax; ++i, ++n) data[n] *= fx_[i] * fjk;
        }
      }
    }
  }
}

}  // namespace awp::core
