#include "core/receivers.hpp"

#include <cmath>
#include <cstring>

#include "util/error.hpp"

namespace awp::core {

using grid::kHalo;

void ReceiverSet::add(std::string name, std::size_t gi, std::size_t gj) {
  pending_.push_back({std::move(name), gi, gj});
}

void ReceiverSet::bind(const DomainGeometry& geom) {
  traces_.clear();
  li_.clear();
  lj_.clear();
  lk_.clear();
  if (!geom.touchesTop()) return;
  const std::size_t gkSurface = geom.global.nz - 1;
  for (const auto& p : pending_) {
    std::size_t li, lj, lk;
    if (geom.owns(p.gi, p.gj, gkSurface, li, lj, lk)) {
      SeismogramTrace t;
      t.name = p.name;
      t.gi = p.gi;
      t.gj = p.gj;
      traces_.push_back(std::move(t));
      li_.push_back(li);
      lj_.push_back(lj);
      lk_.push_back(lk);
    }
  }
}

void ReceiverSet::record(const grid::StaggeredGrid& g, std::size_t step) {
  if (!traces_.empty() && step < traces_.front().u.size())
    ++samplesRewritten_;
  for (std::size_t t = 0; t < traces_.size(); ++t) {
    SeismogramTrace& trace = traces_[t];
    // Defensive gap fill: recording is expected step-dense, but a skipped
    // step must not shift every later sample's time axis.
    if (step > trace.u.size()) {
      trace.u.resize(step, 0.0f);
      trace.v.resize(step, 0.0f);
      trace.w.resize(step, 0.0f);
    }
    const float u = g.u(li_[t], lj_[t], lk_[t]);
    const float v = g.v(li_[t], lj_[t], lk_[t]);
    const float w = g.w(li_[t], lj_[t], lk_[t]);
    if (step < trace.u.size()) {
      // Rollback replay revisiting a recorded step: overwrite in place.
      trace.u[step] = u;
      trace.v[step] = v;
      trace.w[step] = w;
    } else {
      trace.u.push_back(u);
      trace.v.push_back(v);
      trace.w.push_back(w);
    }
  }
}

namespace {

void putBytes(std::vector<std::byte>& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::byte*>(p);
  out.insert(out.end(), b, b + n);
}

template <typename T>
void putValue(std::vector<std::byte>& out, const T& v) {
  putBytes(out, &v, sizeof(T));
}

template <typename T>
T getValue(const std::vector<std::byte>& in, std::size_t& at) {
  T v;
  AWP_CHECK(at + sizeof(T) <= in.size());
  std::memcpy(&v, in.data() + at, sizeof(T));
  at += sizeof(T);
  return v;
}

}  // namespace

std::vector<SeismogramTrace> ReceiverSet::gather(
    vcluster::Communicator& comm) const {
  std::vector<std::byte> payload;
  putValue<std::uint64_t>(payload, traces_.size());
  for (const auto& t : traces_) {
    putValue<std::uint64_t>(payload, t.name.size());
    putBytes(payload, t.name.data(), t.name.size());
    putValue<std::uint64_t>(payload, t.gi);
    putValue<std::uint64_t>(payload, t.gj);
    putValue<std::uint64_t>(payload, t.u.size());
    putBytes(payload, t.u.data(), t.u.size() * sizeof(float));
    putBytes(payload, t.v.data(), t.v.size() * sizeof(float));
    putBytes(payload, t.w.data(), t.w.size() * sizeof(float));
  }

  const auto gathered = comm.gatherBytes(0, payload);
  std::vector<SeismogramTrace> all;
  if (comm.rank() != 0) return all;

  for (const auto& blob : gathered) {
    std::size_t at = 0;
    const auto count = getValue<std::uint64_t>(blob, at);
    for (std::uint64_t n = 0; n < count; ++n) {
      SeismogramTrace t;
      const auto nameLen = getValue<std::uint64_t>(blob, at);
      t.name.assign(reinterpret_cast<const char*>(blob.data() + at),
                    nameLen);
      at += nameLen;
      t.gi = getValue<std::uint64_t>(blob, at);
      t.gj = getValue<std::uint64_t>(blob, at);
      const auto samples = getValue<std::uint64_t>(blob, at);
      auto readSeries = [&](std::vector<float>& dst) {
        dst.resize(samples);
        AWP_CHECK(at + samples * sizeof(float) <= blob.size());
        std::memcpy(dst.data(), blob.data() + at, samples * sizeof(float));
        at += samples * sizeof(float);
      };
      readSeries(t.u);
      readSeries(t.v);
      readSeries(t.w);
      all.push_back(std::move(t));
    }
  }
  return all;
}

SurfaceMonitor::SurfaceMonitor(const DomainGeometry& geom) : geom_(geom) {
  active_ = geom.touchesTop();
  if (active_) {
    const std::size_t n = geom.local.x.count() * geom.local.y.count();
    pgvh_.assign(n, 0.0f);
    pgv_.assign(n, 0.0f);
  }
}

void SurfaceMonitor::accumulate(const grid::StaggeredGrid& g) {
  if (!active_) return;
  const std::size_t T = kHalo + g.dims().nz - 1;
  const std::size_t nx = geom_.local.x.count();
  const std::size_t ny = geom_.local.y.count();
  for (std::size_t j = 0; j < ny; ++j)
    for (std::size_t i = 0; i < nx; ++i) {
      const float vx = g.u(i + kHalo, j + kHalo, T);
      const float vy = g.v(i + kHalo, j + kHalo, T);
      const float vz = g.w(i + kHalo, j + kHalo, T);
      const float h2 = vx * vx + vy * vy;
      const float a2 = h2 + vz * vz;
      float& ph = pgvh_[i + nx * j];
      float& pa = pgv_[i + nx * j];
      if (h2 > ph * ph) ph = std::sqrt(h2);
      if (a2 > pa * pa) pa = std::sqrt(a2);
    }
}

std::vector<float> SurfaceMonitor::gatherMap(
    vcluster::Communicator& comm, const vcluster::CartTopology& topo,
    const std::vector<float>& local) const {
  // Payload: xb, xe, yb, ye, data (empty for non-surface ranks).
  std::vector<std::byte> payload;
  if (active_) {
    putValue<std::uint64_t>(payload, geom_.local.x.begin);
    putValue<std::uint64_t>(payload, geom_.local.x.end);
    putValue<std::uint64_t>(payload, geom_.local.y.begin);
    putValue<std::uint64_t>(payload, geom_.local.y.end);
    putBytes(payload, local.data(), local.size() * sizeof(float));
  }
  const auto gathered = comm.gatherBytes(0, payload);
  if (comm.rank() != 0) return {};

  (void)topo;
  std::vector<float> map(geom_.global.nx * geom_.global.ny, 0.0f);
  for (const auto& blob : gathered) {
    if (blob.empty()) continue;
    std::size_t at = 0;
    const auto xb = getValue<std::uint64_t>(blob, at);
    const auto xe = getValue<std::uint64_t>(blob, at);
    const auto yb = getValue<std::uint64_t>(blob, at);
    const auto ye = getValue<std::uint64_t>(blob, at);
    for (std::uint64_t j = yb; j < ye; ++j)
      for (std::uint64_t i = xb; i < xe; ++i) {
        float v;
        std::memcpy(&v, blob.data() + at, sizeof(float));
        at += sizeof(float);
        map[i + geom_.global.nx * j] = v;
      }
  }
  return map;
}

std::vector<float> SurfaceMonitor::gatherPgvh(
    vcluster::Communicator& comm, const vcluster::CartTopology& topo) const {
  return gatherMap(comm, topo, pgvh_);
}

std::vector<float> SurfaceMonitor::gatherPgv(
    vcluster::Communicator& comm, const vcluster::CartTopology& topo) const {
  return gatherMap(comm, topo, pgv_);
}

}  // namespace awp::core
