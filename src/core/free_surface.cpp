#include "core/free_surface.hpp"
#include "util/hot.hpp"

namespace awp::core {

using grid::kHalo;

AWP_HOT void FreeSurface::applyVelocityImages(grid::StaggeredGrid& g) const {
  if (!active_) return;
  const std::size_t T = kHalo + g.dims().nz - 1;  // surface plane (w level)
  for (std::size_t j = kHalo; j < kHalo + g.dims().ny; ++j)
    for (std::size_t i = kHalo; i < kHalo + g.dims().nx; ++i) {
      const float l = g.lam(i, j, T);
      const float m = g.mu(i, j, T);
      const float hexx = g.u(i + 1, j, T) - g.u(i, j, T);
      const float heyy = g.v(i, j, T) - g.v(i, j - 1, T);
      g.w(i, j, T + 1) =
          g.w(i, j, T) - l / (l + 2.0f * m) * (hexx + heyy);
      // Second image plane: linear continuation of the constrained strain.
      g.w(i, j, T + 2) = g.w(i, j, T + 1);
    }
}

AWP_HOT void FreeSurface::applyStressImages(grid::StaggeredGrid& g) const {
  if (!active_) return;
  const std::size_t T = kHalo + g.dims().nz - 1;
  for (std::size_t j = kHalo; j < kHalo + g.dims().ny; ++j)
    for (std::size_t i = kHalo; i < kHalo + g.dims().nx; ++i) {
      // Shear tractions vanish on the surface plane; antisymmetric above.
      g.xz(i, j, T) = 0.0f;
      g.yz(i, j, T) = 0.0f;
      g.xz(i, j, T + 1) = -g.xz(i, j, T - 1);
      g.yz(i, j, T + 1) = -g.yz(i, j, T - 1);
      g.xz(i, j, T + 2) = -g.xz(i, j, T - 2);
      g.yz(i, j, T + 2) = -g.yz(i, j, T - 2);
      // σzz sits half a cell below the surface: odd images about T + 1/2.
      g.zz(i, j, T + 1) = -g.zz(i, j, T);
      g.zz(i, j, T + 2) = -g.zz(i, j, T - 1);
    }
}

}  // namespace awp::core
