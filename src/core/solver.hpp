#pragma once
// AWM: the anelastic wave propagation solver — AWP-ODC's "wave mode"
// (Fig 6). One instance per rank; the time loop performs
//   velocity update -> velocity exchange -> free-surface velocity images ->
//   stress update -> source injection -> free-surface stress images ->
//   stress exchange -> sponge -> observation / output / checkpoint
// with each phase timed into the Eq. (7) buckets (compute, comm, sync,
// output).
//
// Configuration covers every §IV optimization so that benches can toggle
// them independently: kernel variants, sync/async exchange, reduced
// communication, per-component computation/communication interleaving
// (overlap), sponge vs M-PML absorbing boundaries, aggregated surface
// output and checkpoint cadence.

#include <functional>
#include <memory>
#include <optional>

#include "core/free_surface.hpp"
#include "core/geometry.hpp"
#include "core/kernels.hpp"
#include "core/pml.hpp"
#include "core/receivers.hpp"
#include "core/source.hpp"
#include "core/sponge.hpp"
#include "grid/halo.hpp"
#include "grid/staggered_grid.hpp"
#include "health/guard.hpp"
#include "io/aggregated_writer.hpp"
#include "io/buddy.hpp"
#include "io/checkpoint.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/report.hpp"
#include "util/timer.hpp"
#include "vcluster/cart.hpp"
#include "vcluster/comm.hpp"

namespace awp::core {

enum class AbsorbingType { None, Sponge, Pml };

// Where and how often the solver emits telemetry aggregates. Only
// consulted while a telemetry session is installed; spans and counters
// themselves are recorded by the hooks regardless of these knobs.
struct TelemetryOutputConfig {
  int reportEverySteps = 0;      // 0 = only at end of run()
  std::string reportPath;        // cluster JSON report (rank 0; "" = none)
  std::string tracePathPrefix;   // per-rank JSONL: <prefix>.rankN.jsonl
  std::string chromeTracePath;   // whole-session chrome://tracing array
                                 // written by rank 0 at end of run ("" = none)
  // Whether run() performs collective aggregation at all. The scenario
  // service shares one session across concurrent jobs and aggregates
  // itself after shutdown; a job solver aggregating mid-flight would read
  // the off-rank slot while the dispatcher is still writing spans to it.
  bool emitAggregates = true;
};

struct SolverConfig {
  grid::GridDims globalDims;
  double h = 100.0;
  double dt = 0.0;  // 0 = derive from CFL after material load

  grid::AttenuationConfig attenuation;
  KernelOptions kernels;

  grid::HaloExchanger::Mode commMode =
      grid::HaloExchanger::Mode::Asynchronous;
  bool reducedComm = true;
  bool overlap = false;  // per-component interleaving (§IV.C)
  bool barrierPerStep = false;  // the v6.0-era extra global barrier
  // §IV.D hybrid MPI/OpenMP analogue: intra-rank threads sharing this
  // rank's subgrid (1 = pure message passing).
  int hybridThreads = 1;

  AbsorbingType absorbing = AbsorbingType::Sponge;
  int spongeWidth = 20;
  PmlConfig pml;
  bool freeSurface = true;

  // Runtime health guard (preflight + blow-up monitor + rollback budget).
  health::HealthConfig health;

  // Telemetry emission (see src/telemetry; no-op without a session).
  TelemetryOutputConfig telemetry;
};

// Optional aggregated surface-velocity output (§III.E).
struct SurfaceOutputConfig {
  io::SharedFile* file = nullptr;
  int sampleEverySteps = 10;   // temporal decimation (M8: every 20th step)
  int spatialDecimation = 1;   // write every Nth surface point
  int flushEverySamples = 10;  // aggregation depth (1 = unbuffered)
  // Optional durable-prefix observer (serving tier): fires on the rank
  // thread after each flush/resume that advances this rank's flushed
  // sample prefix. Only surface ranks own a writer, so only they call it.
  io::FlushObserver flushObserver;
};

class WaveSolver {
 public:
  // Collective: build the solver on every rank. The mesh block must match
  // the rank's subdomain under `topo`.
  WaveSolver(vcluster::Communicator& comm, const vcluster::CartTopology& topo,
             const SolverConfig& config, const mesh::MeshBlock& block);
  // Uniform-material convenience constructor.
  WaveSolver(vcluster::Communicator& comm, const vcluster::CartTopology& topo,
             const SolverConfig& config, const vmodel::Material& material);

  // Sources/receivers must be added before the first step.
  void addSource(MomentRateSource src);
  void addReceiver(std::string name, std::size_t gi, std::size_t gj);
  void attachSurfaceOutput(const SurfaceOutputConfig& out);
  void attachCheckpoints(io::CheckpointStore* store, int everySteps);
  // Diskless buddy checkpointing (recovery ladder rung 1): at the given
  // cadence each rank keeps its serialized state in `store` and replicates
  // it to its ring buddy over the cluster. restart() prefers these blobs
  // over the on-disk store. Collective once attached: every rank must
  // attach with the same cadence.
  void attachBuddies(io::BuddyStore* store, int everySteps);

  void step();
  void run(std::size_t nSteps,
           const std::function<void(std::size_t)>& onStep = nullptr);

  // Restart from the newest checkpoint in the attached store (collective).
  void restart();

  [[nodiscard]] std::size_t currentStep() const { return step_; }
  // The effective time step (CFL-derived when the config asked for dt = 0,
  // and tightened by health-guard rollbacks).
  [[nodiscard]] double dt() const { return config_.dt; }
  [[nodiscard]] bool dtDerived() const { return dtDerived_; }
  // The health guard, when config.health.enabled (nullptr otherwise) —
  // tests and harnesses read its event trail.
  [[nodiscard]] health::HealthGuard* healthGuard() { return guard_.get(); }
  [[nodiscard]] grid::StaggeredGrid& grid() { return *grid_; }
  [[nodiscard]] const DomainGeometry& geometry() const { return geom_; }
  [[nodiscard]] const SolverConfig& config() const { return config_; }
  [[nodiscard]] PhaseTimer& phases() { return phases_; }
  [[nodiscard]] grid::HaloExchanger& exchanger() { return *halo_; }
  [[nodiscard]] SurfaceMonitor& surface() { return *surface_; }
  [[nodiscard]] ReceiverSet& receivers() { return receivers_; }
  [[nodiscard]] vcluster::Communicator& comm() { return comm_; }
  [[nodiscard]] const vcluster::CartTopology& topology() const {
    return topo_;
  }

  // Useful flops executed so far (for sustained-performance accounting).
  [[nodiscard]] double flopsExecuted() const;

  // The newest cluster telemetry report (rank 0 only; !valid() elsewhere
  // or before the first emission).
  [[nodiscard]] const telemetry::ClusterReport& lastTelemetryReport() const {
    return lastTelemetryReport_;
  }

 private:
  void init(const mesh::MeshBlock& block);
  void velocityPhase();
  void stressPhase();
  void observationPhase();
  // Per-step fault/fence consult (out-of-line: keeps `throw` sites off the
  // AWP_HOT step body). Fences a zombie incarnation before it can beat the
  // heartbeat or write spans, and services the rank_death / solver.step
  // injection sites.
  void stepEntryChecks();
  // Persist this rank's serialized state to disk and/or the buddy store
  // (includes the ring replica exchange when toBuddy). Not hot: runs on
  // the checkpoint cadence only.
  void persistState(bool toDisk, bool toBuddy);
  [[nodiscard]] health::PreflightContext buildPreflightContext(
      std::size_t plannedSteps) const;
  // Collective recovery from a Fatal cluster verdict: roll back to the
  // agreed checkpoint generation and tighten dt, or (budget exhausted /
  // nothing to restore) throw the structured diagnostic dump on every rank.
  void handleBlowup(const health::ClusterVerdict& cv);
  // After a Healthy streak on a tightened dt, walk dt back toward the
  // baseline (collective: every rank sees the same streak and factors).
  void maybeRewiden();
  // Collective telemetry aggregation + report/trace emission.
  void emitTelemetry(double wallSeconds, bool endOfRun);

  vcluster::Communicator& comm_;
  const vcluster::CartTopology& topo_;
  SolverConfig config_;
  DomainGeometry geom_;

  std::unique_ptr<ThreadPool> pool_;  // §IV.D hybrid mode
  std::unique_ptr<grid::StaggeredGrid> grid_;
  std::unique_ptr<grid::HaloExchanger> halo_;
  std::unique_ptr<FreeSurface> freeSurface_;
  std::unique_ptr<SpongeLayer> sponge_;
  std::unique_ptr<PmlBoundary> pml_;
  std::unique_ptr<SurfaceMonitor> surface_;

  SourceSet sources_;
  ReceiverSet receivers_;

  std::optional<SurfaceOutputConfig> surfaceOutput_;
  std::unique_ptr<io::AggregatedWriter> surfaceWriter_;
  // Preallocated (in attachSurfaceOutput) staging for one decimated surface
  // sample: observationPhase is on the hot path and must not allocate.
  std::vector<float> surfaceSample_;

  io::CheckpointStore* checkpoints_ = nullptr;
  int checkpointEvery_ = 0;
  io::BuddyStore* buddies_ = nullptr;
  int buddyEvery_ = 0;

  std::unique_ptr<health::HealthGuard> guard_;
  bool preflightDone_ = false;
  bool dtDerived_ = false;
  double dtBaseline_ = 0.0;  // dt before any health-guard tightening

  PhaseTimer phases_;
  std::size_t step_ = 0;

  // Rollback-replay window: opened on a successful rollback, closed when
  // the solver re-reaches the step it rolled back from.
  // awplint: manual-span(opens in handleBlowup and closes steps later in run; no lexical scope spans the replay window)
  telemetry::ManualSpan replaySpan_;
  std::size_t replayTarget_ = 0;
  double wallSeconds_ = 0.0;  // accumulated across run() calls
  telemetry::ClusterReport lastTelemetryReport_;
};

}  // namespace awp::core
