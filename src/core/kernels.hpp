#pragma once
// The AWP-ODC finite-difference kernels: 4th-order-in-space, 2nd-order-in-
// time velocity–stress updates on the staggered grid (§II.B), including
// the coarse-grained memory-variable attenuation (§II.A), plus the §IV.B
// single-CPU optimization variants kept side by side so the ablations are
// real measurements:
//   * plain        — divisions per use (1/μ recomputed at every point)
//   * reciprocal   — stored 1/λ, 1/μ ("only the reciprocal form is used in
//                    frequently invoked subroutines")
//   * cache-block  — kblock/jblock tiling of the k/j loops
//   * unrolled     — 2x inner-loop unrolling ("unrolling by 2 iterations
//                    gives the best performance")
//
// Staggering convention (h = grid spacing):
//   xx, yy, zz at (i, j, k);  u at (i-1/2, j, k);  v at (i, j+1/2, k);
//   w at (i, j, k+1/2);  xy at (i-1/2, j+1/2, k);  xz at (i-1/2, j, k+1/2);
//   yz at (i, j+1/2, k+1/2).

#include "grid/staggered_grid.hpp"
#include "util/thread_pool.hpp"

namespace awp::core {

struct KernelOptions {
  bool useReciprocals = true;
  bool cacheBlocked = false;
  bool unrolled = false;
  // "For a typical loop length of 125, the optimal solution was found to
  // be 16/8" (§IV.B).
  int kblock = 16;
  int jblock = 8;
  // §IV.D hybrid mode: when set, the k loop is split across the pool's
  // threads ("multiple OpenMP threads, spawned from a single MPI process,
  // directly access shared memory within a node"). Non-owning.
  ThreadPool* pool = nullptr;
};

// Raw-index update region (half-open). Defaults to the full interior.
struct Region {
  std::size_t i0, i1, j0, j1, k0, k1;
  static Region interior(const grid::StaggeredGrid& g) {
    return Region{grid::kHalo, grid::kHalo + g.dims().nx,
                  grid::kHalo, grid::kHalo + g.dims().ny,
                  grid::kHalo, grid::kHalo + g.dims().nz};
  }
};

enum class VelocityComponent { U = 0, V, W };
enum class StressGroup { Normal = 0, XY, XZ, YZ };

// Update one velocity component over a region from the current stresses.
void updateVelocity(grid::StaggeredGrid& g, VelocityComponent comp,
                    const KernelOptions& opts, const Region& r);
// All three components over the full interior.
void updateVelocity(grid::StaggeredGrid& g, const KernelOptions& opts);

// Update one stress group over a region from the current velocities.
void updateStress(grid::StaggeredGrid& g, StressGroup group,
                  const KernelOptions& opts, const Region& r);
// All stress components over the full interior.
void updateStress(grid::StaggeredGrid& g, const KernelOptions& opts);

// Useful-flop estimates per interior grid point per full time step, for
// sustained-performance accounting (§V.B).
double velocityFlopsPerPoint();
double stressFlopsPerPoint(bool attenuation);
double flopsPerPointPerStep(bool attenuation);

}  // namespace awp::core
