#pragma once
// Material properties stored on the mesh. The M8 run stored Vp, Vs and
// density per cell and computed quality factors on the fly from the
// empirical relations Qs = 50·Vs [km/s] and Qp = 2·Qs (§VII.B).

namespace awp::vmodel {

struct Material {
  float vp = 0.0f;   // P-wave speed [m/s]
  float vs = 0.0f;   // S-wave speed [m/s]
  float rho = 0.0f;  // density [kg/m^3]
};

// Quality factors from the paper's on-the-fly relations.
double qsOf(double vs);  // Qs = 50 * Vs, Vs in km/s
double qpOf(double vs);  // Qp = 2 * Qs

// Brocher (2005) density from Vp (km/s), returned in kg/m^3. Used by the
// synthetic CVM so (vp, vs, rho) stay mutually consistent.
double brocherDensity(double vpMetersPerSecond);

// Lamé parameters.
double muOf(const Material& m);      // μ = ρ Vs²
double lambdaOf(const Material& m);  // λ = ρ (Vp² − 2 Vs²)

// Physical admissibility for the elastic solver: nullptr when the material
// is usable, else a static description of the defect. Zero or negative Vs
// (an acoustic or empty cell) is rejected here: the kernels would silently
// produce a μ = 0 medium and the CFL probe a meaningless dt.
const char* materialIssue(const Material& m);

}  // namespace awp::vmodel
