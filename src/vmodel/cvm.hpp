#pragma once
// Synthetic community velocity model. Substitute for the SCEC CVM4: the
// paper extracts (Vp, Vs, rho) from CVM4 through a rule-based interpolation
// query (§III.B); we provide the same query interface over a synthetic
// southern-California-like structure — a 1D crustal background with
// embedded ellipsoidal sedimentary basins (Los Angeles, San Bernardino,
// Ventura and Coachella analogues) that produce the waveguide and basin
// amplification phenomenology the science results depend on (§VI, §VII).
//
// Coordinates: x, y in meters within the model rectangle, z = depth below
// the free surface in meters (positive down).

#include <string>
#include <vector>

#include "vmodel/material.hpp"

namespace awp::vmodel {

class VelocityModel {
 public:
  virtual ~VelocityModel() = default;
  [[nodiscard]] virtual Material sample(double x, double y,
                                        double z) const = 0;
};

// Piecewise-linear 1D background: properties depend on depth only.
class LayeredModel : public VelocityModel {
 public:
  struct Layer {
    double top;  // depth of layer top [m]
    double vs;   // S speed at layer top [m/s]
  };

  // Layers must be sorted by increasing top depth; Vs is interpolated
  // linearly between layer tops and constant below the deepest.
  explicit LayeredModel(std::vector<Layer> layers,
                        double vpOverVs = 1.732);

  // Hard-rock southern-California-like background.
  static LayeredModel socalBackground();

  [[nodiscard]] Material sample(double x, double y, double z) const override;
  [[nodiscard]] double vsAtDepth(double z) const;

 private:
  std::vector<Layer> layers_;
  double vpOverVs_;
};

// Ellipsoidal sediment-filled basin carved into a background model.
struct Basin {
  std::string name;
  double cx = 0.0, cy = 0.0;  // center [m]
  double rx = 0.0, ry = 0.0;  // horizontal semi-axes [m]
  double maxDepth = 0.0;      // sediment depth at basin center [m]
  double vsSurface = 0.0;     // Vs of sediments at the surface [m/s]

  // Sediment thickness at (x, y); 0 outside the basin footprint.
  [[nodiscard]] double depthAt(double x, double y) const;
};

// Named analysis site within the model (for seismogram extraction, Fig 21).
struct Site {
  std::string name;
  double x = 0.0, y = 0.0;  // [m]
};

class CommunityVelocityModel : public VelocityModel {
 public:
  CommunityVelocityModel(LayeredModel background, std::vector<Basin> basins,
                         double vsMin);

  // A southern-California-like model scaled to a lx-by-ly rectangle with a
  // fault trace running along y = faultY. Includes LA, San Bernardino,
  // Ventura and Coachella basin analogues, and the named sites of Fig 21.
  // vsMin clamps the minimum S speed (400 m/s in M8, §VII.B).
  static CommunityVelocityModel socal(double lx, double ly, double faultY,
                                      double vsMin = 400.0);

  [[nodiscard]] Material sample(double x, double y, double z) const override;

  // Depth to the Vs = vsIso isosurface at (x, y) — the quantity shaded in
  // Figs 1 and 20 (vsIso = 2500 m/s there).
  [[nodiscard]] double depthToIsosurface(double x, double y,
                                         double vsIso) const;

  [[nodiscard]] const std::vector<Basin>& basins() const { return basins_; }
  [[nodiscard]] const std::vector<Site>& sites() const { return sites_; }
  void addSite(Site s) { sites_.push_back(std::move(s)); }

 private:
  LayeredModel background_;
  std::vector<Basin> basins_;
  std::vector<Site> sites_;
  double vsMin_;
};

}  // namespace awp::vmodel
