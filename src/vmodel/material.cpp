#include "vmodel/material.hpp"

#include <algorithm>
#include <cmath>

namespace awp::vmodel {

double qsOf(double vs) { return 50.0 * (vs / 1000.0); }

double qpOf(double vs) { return 2.0 * qsOf(vs); }

double brocherDensity(double vpMetersPerSecond) {
  const double vp = vpMetersPerSecond / 1000.0;  // km/s
  const double rhoGcc = 1.6612 * vp - 0.4721 * vp * vp +
                        0.0671 * vp * vp * vp - 0.0043 * vp * vp * vp * vp +
                        0.000106 * vp * vp * vp * vp * vp;
  return std::max(1000.0, rhoGcc * 1000.0);
}

double muOf(const Material& m) {
  return static_cast<double>(m.rho) * m.vs * m.vs;
}

double lambdaOf(const Material& m) {
  return static_cast<double>(m.rho) *
         (static_cast<double>(m.vp) * m.vp - 2.0 * static_cast<double>(m.vs) * m.vs);
}

const char* materialIssue(const Material& m) {
  if (!std::isfinite(m.vp) || !std::isfinite(m.vs) || !std::isfinite(m.rho))
    return "non-finite vp/vs/rho";
  if (m.rho <= 0.0f) return "rho <= 0";
  if (m.vs <= 0.0f) return "vs <= 0";
  if (m.vp <= m.vs) return "vp <= vs";
  return nullptr;
}

}  // namespace awp::vmodel
