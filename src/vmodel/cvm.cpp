#include "vmodel/cvm.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace awp::vmodel {

LayeredModel::LayeredModel(std::vector<Layer> layers, double vpOverVs)
    : layers_(std::move(layers)), vpOverVs_(vpOverVs) {
  AWP_CHECK(!layers_.empty());
  for (std::size_t i = 1; i < layers_.size(); ++i)
    AWP_CHECK_MSG(layers_[i].top > layers_[i - 1].top,
                  "layers must be sorted by increasing depth");
}

LayeredModel LayeredModel::socalBackground() {
  // Hard-rock gradient: Vs(0) > 1000 m/s so background sites qualify as
  // "rock sites" under the Fig 23 definition (surface Vs > 1000 m/s).
  return LayeredModel({{0.0, 1100.0},
                       {500.0, 1800.0},
                       {2000.0, 2800.0},
                       {6000.0, 3200.0},
                       {16000.0, 3500.0},
                       {32000.0, 3900.0},
                       {85000.0, 4500.0}});
}

double LayeredModel::vsAtDepth(double z) const {
  z = std::max(0.0, z);
  if (z <= layers_.front().top) return layers_.front().vs;
  for (std::size_t i = 1; i < layers_.size(); ++i) {
    if (z <= layers_[i].top) {
      const double f = (z - layers_[i - 1].top) /
                       (layers_[i].top - layers_[i - 1].top);
      return layers_[i - 1].vs + f * (layers_[i].vs - layers_[i - 1].vs);
    }
  }
  return layers_.back().vs;
}

Material LayeredModel::sample(double /*x*/, double /*y*/, double z) const {
  const double vs = vsAtDepth(z);
  Material m;
  m.vs = static_cast<float>(vs);
  m.vp = static_cast<float>(vs * vpOverVs_);
  m.rho = static_cast<float>(brocherDensity(m.vp));
  return m;
}

double Basin::depthAt(double x, double y) const {
  const double ex = (x - cx) / rx;
  const double ey = (y - cy) / ry;
  const double r2 = ex * ex + ey * ey;
  if (r2 >= 1.0) return 0.0;
  // Smooth bowl: deepest at the center, tapering to zero at the rim.
  return maxDepth * std::sqrt(1.0 - r2);
}

CommunityVelocityModel::CommunityVelocityModel(LayeredModel background,
                                               std::vector<Basin> basins,
                                               double vsMin)
    : background_(std::move(background)),
      basins_(std::move(basins)),
      vsMin_(vsMin) {}

CommunityVelocityModel CommunityVelocityModel::socal(double lx, double ly,
                                                     double faultY,
                                                     double vsMin) {
  // Basin geometry expressed as fractions of the model rectangle so the
  // same structure works for the full 810 km x 405 km M8 domain and for
  // scaled-down test domains. Positions echo the regional layout: the LA
  // and Ventura basins sit well off the fault toward -y/west, San
  // Bernardino and Coachella hug the fault trace.
  std::vector<Basin> basins = {
      {"Los Angeles", 0.38 * lx, faultY - 0.28 * ly, 0.14 * lx, 0.16 * ly,
       6000.0, 450.0},
      {"San Bernardino", 0.55 * lx, faultY - 0.03 * ly, 0.07 * lx,
       0.08 * ly, 2000.0, 420.0},
      {"Ventura", 0.16 * lx, faultY - 0.22 * ly, 0.09 * lx, 0.12 * ly,
       5000.0, 430.0},
      {"Coachella", 0.82 * lx, faultY + 0.02 * ly, 0.10 * lx, 0.07 * ly,
       3000.0, 440.0},
  };
  CommunityVelocityModel cvm(LayeredModel::socalBackground(),
                             std::move(basins), vsMin);

  // Fig 21 seismogram sites, placed relative to their basins / the fault.
  cvm.addSite({"San Bernardino", 0.55 * lx, faultY - 0.035 * ly});
  cvm.addSite({"Downtown LA", 0.40 * lx, faultY - 0.27 * ly});
  cvm.addSite({"Downey", 0.41 * lx, faultY - 0.31 * ly});
  cvm.addSite({"Oxnard", 0.15 * lx, faultY - 0.24 * ly});
  cvm.addSite({"Long Beach", 0.37 * lx, faultY - 0.34 * ly});
  cvm.addSite({"Coachella", 0.82 * lx, faultY + 0.03 * ly});
  return cvm;
}

Material CommunityVelocityModel::sample(double x, double y, double z) const {
  Material m = background_.sample(x, y, z);
  for (const auto& b : basins_) {
    const double sedimentDepth = b.depthAt(x, y);
    if (z < sedimentDepth) {
      // Inside the sediments: Vs grows with sqrt(depth) from the surface
      // value toward the background at the basin floor (rule-based
      // interpolation, as CVM4's geotechnical layer does).
      const double floorVs = background_.vsAtDepth(sedimentDepth);
      const double f = std::sqrt(std::max(0.0, z / sedimentDepth));
      const double vs = b.vsSurface + f * (floorVs - b.vsSurface);
      if (vs < m.vs) {
        m.vs = static_cast<float>(vs);
        m.vp = static_cast<float>(std::max(1500.0, vs * 2.0));
        m.rho = static_cast<float>(brocherDensity(m.vp));
      }
    }
  }
  if (m.vs < vsMin_) {
    m.vs = static_cast<float>(vsMin_);
    m.vp = std::max(m.vp, static_cast<float>(vsMin_ * 2.0));
    m.rho = static_cast<float>(brocherDensity(m.vp));
  }
  return m;
}

double CommunityVelocityModel::depthToIsosurface(double x, double y,
                                                 double vsIso) const {
  // March down in 50 m steps until Vs exceeds the isosurface value.
  constexpr double kStep = 50.0;
  constexpr double kMaxDepth = 20000.0;
  for (double z = 0.0; z <= kMaxDepth; z += kStep) {
    if (sample(x, y, z).vs >= vsIso) return z;
  }
  return kMaxDepth;
}

}  // namespace awp::vmodel
