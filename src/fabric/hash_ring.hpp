#pragma once
// Consistent-hash ring for scenario ownership. Each broker contributes a
// fixed set of virtual nodes at deterministic points on a 64-bit ring; a
// scenario's owner is the first LIVE broker at or after the point derived
// from its physics-only spec digest. Liveness comes in as a bitmask (from
// the epoch-numbered membership view), so a broker death moves only the
// hash ranges that landed on the dead broker's vnodes — every other
// assignment is untouched, which is what keeps a handoff from stampeding
// the whole ensemble.

#include <cstdint>
#include <string_view>
#include <vector>

namespace awp::fabric {

class HashRing {
 public:
  // Same (nbrokers, vnodesPerBroker) always builds the same ring: vnode
  // points are hashes of a fixed label scheme, not of any runtime state,
  // so every broker computes identical ownership without coordination.
  HashRing(int nbrokers, int vnodesPerBroker);

  // Ring point of a scenario digest (the spec's MD5 hex).
  [[nodiscard]] static std::uint64_t pointFor(std::string_view digestHex);

  // First live broker at/after `point` (wrapping). Registered hot path:
  // one binary search plus a bounded walk, no allocation, no throw.
  // Returns -1 when liveMask selects nobody.
  [[nodiscard]] int ownerOf(std::uint64_t point,
                            std::uint32_t liveMask) const;

  [[nodiscard]] int nbrokers() const { return nbrokers_; }
  [[nodiscard]] std::size_t vnodeCount() const { return ring_.size(); }

 private:
  struct Vnode {
    std::uint64_t at = 0;
    std::int32_t broker = -1;
  };

  int nbrokers_;
  std::vector<Vnode> ring_;  // sorted by (at, broker)
};

}  // namespace awp::fabric
