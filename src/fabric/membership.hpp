#pragma once
// Lease-based membership for the hazard fabric. Every broker holds a
// time-bounded lease it must renew by heartbeat; the board lazily expires
// lapsed leases and numbers each change of the live set with a membership
// epoch. Brokers act only on the epoch-stamped VIEW, never on each other
// directly: a broker that misses renewals (death or partition) simply
// vanishes from the next view, and the epoch bump is what triggers the
// survivors to re-run ownership over the submission log.
//
// The board is the fabric's one oracle (the moral equivalent of the
// coordination service a multi-process fabric would run); brokers reach it
// through FabricTransport so an injected partition severs a broker from
// the board exactly like it severs it from its peers.

#include <bit>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/guarded.hpp"

namespace awp::fabric {

struct MembershipView {
  std::uint64_t epoch = 0;
  std::uint32_t liveMask = 0;

  [[nodiscard]] bool contains(int broker) const {
    return broker >= 0 && broker < 32 &&
           ((liveMask >> static_cast<std::uint32_t>(broker)) & 1u) != 0;
  }
  [[nodiscard]] int liveCount() const { return std::popcount(liveMask); }
};

class LeaseBoard {
 public:
  // All brokers start live, holding a fresh lease relative to t = 0 of the
  // fabric's stopwatch. The first view carries epoch 1.
  LeaseBoard(int nbrokers, double leaseSeconds);

  enum class RenewResult {
    Ok,      // lease extended to now + leaseSeconds
    Lapsed,  // the lease already expired: the broker must rejoin
  };

  // Heartbeat renewal. Registered hot path (every broker calls it every
  // heartbeat): one mutex, comparisons, no allocation, no throw.
  RenewResult renew(int broker, double nowSeconds);

  // Re-admit a lapsed broker (post-partition recovery). Bumps the epoch.
  // Ignored for brokers evicted by markDead — fail-stop is permanent.
  void rejoin(int broker, double nowSeconds);

  // Administrative fail-stop eviction (tests; operator kill). The honest
  // path for a crashed broker is to simply stop renewing.
  void markDead(int broker);

  // Current view; expires lapsed leases first (lazy, so no timer thread).
  [[nodiscard]] MembershipView view(double nowSeconds);

  [[nodiscard]] int nbrokers() const { return nbrokers_; }

 private:
  // Expire lapsed leases; bump the epoch once per call when anything
  // changed.
  void evaluateLocked(double nowSeconds) AWP_REQUIRES(mu_);

  const int nbrokers_;
  const double leaseSeconds_;
  mutable std::mutex mu_;
  std::vector<double> deadline_ AWP_GUARDED_BY(mu_);
  std::vector<char> live_ AWP_GUARDED_BY(mu_);
  std::vector<char> dead_ AWP_GUARDED_BY(mu_);  // markDead: permanent
  std::uint64_t epoch_ AWP_GUARDED_BY(mu_) = 1;
};

}  // namespace awp::fabric
