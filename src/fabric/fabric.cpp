#include "fabric/fabric.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <utility>

#include "telemetry/registry.hpp"
#include "util/error.hpp"

namespace awp::fabric {

namespace fs = std::filesystem;

sched::JobPhase FabricJob::wait() {
  std::unique_lock<std::mutex> lock(mu);
  settledCv.wait(lock, [&] { return settled; });
  return phase;
}

bool FabricJob::done() const {
  std::lock_guard<std::mutex> lock(mu);
  return settled;
}

FabricConfig FabricConfig::fromRuntime(const core::RuntimeConfig& rc) {
  FabricConfig c;
  c.brokers = rc.fabric.brokers;
  c.vnodes = rc.fabric.vnodes;
  c.leaseSeconds = rc.fabric.leaseSeconds;
  c.heartbeatSeconds = rc.fabric.heartbeatSeconds;
  c.degradedAfterMisses = rc.fabric.degradedAfterMisses;
  c.pumpIntervalSeconds = rc.fabric.pumpIntervalSeconds;
  c.forwardAttempts = rc.fabric.forwardAttempts;
  c.rootDir = rc.fabric.rootDir;
  c.telemetry = rc.telemetryEnabled;
  c.telemetryRingCapacity = rc.telemetryRingCapacity;
  c.chromeTracePath = rc.solver.telemetry.chromeTracePath;
  c.service = sched::ServiceConfig::fromRuntime(rc);
  c.service.telemetry = false;  // the fabric owns the session
  c.service.chromeTracePath.clear();
  c.serve = serve::ServeConfig::fromRuntime(rc);
  return c;
}

HazardFabric::HazardFabric(FabricConfig config) : config_(std::move(config)) {
  AWP_CHECK_MSG(config_.brokers >= 1 && config_.brokers <= 32,
                "fabric: broker count outside [1, 32]");
  if (config_.rootDir.empty())
    config_.rootDir = (fs::temp_directory_path() / "awp-fabric").string();
  fs::create_directories(fs::path(config_.rootDir) / "cache");

  // One ProductServer over the shared cache tier: tile chunks dedupe
  // against each other (and coexist with memoized products) in the same
  // content-addressed directory every broker already shares.
  serveCache_ = std::make_unique<sched::ArtifactCache>(
      (fs::path(config_.rootDir) / "cache").string());
  server_ =
      std::make_unique<serve::ProductServer>(serveCache_.get(), config_.serve);

  board_ = std::make_unique<LeaseBoard>(config_.brokers,
                                        config_.leaseSeconds);
  ring_ = std::make_unique<HashRing>(config_.brokers, config_.vnodes);
  transport_ = std::make_unique<FabricTransport>(
      config_.brokers, board_.get(), config_.inboxCapacity);
  log_ = std::make_unique<SubmissionLog>();

  const int coreBudget = std::max(1, config_.service.coreBudget);
  const int totalCores = config_.brokers * coreBudget;
  if (config_.telemetry && telemetry::activeSession() == nullptr) {
    // One session for the whole fabric: [0, totalCores) rank lanes in
    // per-broker blocks, then a dispatcher lane and a pump lane per
    // broker — every span writer gets a dedicated single-writer slot.
    telemetry::SessionConfig sc;
    sc.nranks = totalCores + 2 * config_.brokers;
    sc.ringCapacity = config_.telemetryRingCapacity;
    ownedSession_ = std::make_unique<telemetry::Session>(sc);
    telemetry::installSession(ownedSession_.get());
  }

  std::vector<std::string> workDirs;
  workDirs.reserve(static_cast<std::size_t>(config_.brokers));
  for (int i = 0; i < config_.brokers; ++i)
    workDirs.push_back(
        (fs::path(config_.rootDir) / ("broker-" + std::to_string(i)))
            .string());

  auto settle = [this](int broker, const std::string& digest,
                       sched::JobPhase phase,
                       sched::ScenarioProducts products,
                       const std::string& error) {
    settleJob(broker, digest, std::move(products), phase, error);
  };
  auto event = [this](int broker, const std::string& what) {
    recordEvent(broker, what);
  };

  for (int i = 0; i < config_.brokers; ++i) {
    BrokerConfig bc;
    bc.id = i;
    bc.heartbeatSeconds = config_.heartbeatSeconds;
    bc.degradedAfterMisses = config_.degradedAfterMisses;
    bc.pumpIntervalSeconds = config_.pumpIntervalSeconds;
    bc.forwardAttempts = config_.forwardAttempts;
    bc.peerWorkDirs = workDirs;
    bc.service = config_.service;
    bc.service.telemetry = false;  // never own a nested session
    bc.service.cacheProducts = true;
    bc.service.cacheDir =
        (fs::path(config_.rootDir) / "cache").string();
    bc.service.workDir = workDirs[static_cast<std::size_t>(i)];
    bc.service.chromeTracePath.clear();
    bc.service.publisher = server_.get();
    bc.service.publishOriginId = i;
    bc.reconcile = [this] { server_->reconcile(); };
    bc.reconcileEveryTicks = config_.serve.reconcileEveryTicks;
    bc.service.telemetrySlotBase = i * coreBudget;
    if (ownedSession_ != nullptr) {
      bc.service.dispatcherTelemetrySlot = totalCores + i;
      bc.pumpTelemetrySlot = totalCores + config_.brokers + i;
    }
    brokers_.push_back(std::make_unique<Broker>(
        bc, ring_.get(), transport_.get(), log_.get(), &clock_, settle,
        event));
  }
  for (auto& b : brokers_) b->start();
}

HazardFabric::~HazardFabric() { shutdown(); }

FabricJobHandle HazardFabric::submit(sched::ScenarioSpec spec) {
  const std::string digest = spec.hashHex();
  FabricJobHandle job;
  {
    std::lock_guard<std::mutex> lock(jobsMu_);
    auto it = jobs_.find(digest);
    if (it != jobs_.end()) {
      std::lock_guard<std::mutex> jobLock(it->second->mu);
      ++it->second->submissions;
      return it->second;
    }
    job = std::make_shared<FabricJob>();
    job->spec = spec;
    job->digest = digest;
    job->submissions = 1;
    jobs_[digest] = job;
  }

  // Entry broker: round-robin over the non-dead brokers. The log append
  // happens BEFORE any routing, so nothing downstream can lose the
  // scenario — worst case it waits for a view change and replays.
  int entry = -1;
  {
    std::lock_guard<std::mutex> lock(jobsMu_);
    for (int tries = 0; tries < config_.brokers; ++tries) {
      const int candidate =
          static_cast<int>(nextEntry_++ % static_cast<std::uint64_t>(
                                              config_.brokers));
      if (brokers_[static_cast<std::size_t>(candidate)]->state() !=
          BrokerState::Dead) {
        entry = candidate;
        break;
      }
    }
  }
  if (entry < 0) {
    settleJob(-1, digest, {}, sched::JobPhase::Failed,
              "no live brokers to accept the submission");
    return job;
  }
  log_->append(spec, digest, entry);
  auto shared = std::make_shared<const sched::ScenarioSpec>(std::move(spec));
  brokers_[static_cast<std::size_t>(entry)]->submitClient(shared, digest);
  return job;
}

void HazardFabric::settleJob(int broker, const std::string& digest,
                             sched::ScenarioProducts products,
                             sched::JobPhase phase,
                             const std::string& error) {
  (void)broker;
  FabricJobHandle job;
  {
    std::lock_guard<std::mutex> lock(jobsMu_);
    auto it = jobs_.find(digest);
    if (it == jobs_.end()) return;
    job = it->second;
  }
  bool accepted = false;
  {
    std::lock_guard<std::mutex> lock(job->mu);
    if (!job->settled) {
      job->settled = true;
      job->phase = phase;
      job->products = std::move(products);
      job->error = error;
      job->completions = 1;
      accepted = true;
    }
    job->settledCv.notify_all();
  }
  if (!accepted) {
    // Two brokers raced the same digest to completion (at-least-once
    // replay doing its job); the duplicate settle is absorbed here.
    telemetry::count(telemetry::Counter::FabricDedupHits);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(jobsMu_);
    if (phase == sched::JobPhase::Completed)
      ++completed_;
    else
      ++failed_;
  }
  settleCv_.notify_all();
}

void HazardFabric::settleRemainingLocked(const std::string& why) {
  for (auto& [digest, job] : jobs_) {
    std::lock_guard<std::mutex> lock(job->mu);
    if (job->settled) continue;
    job->settled = true;
    job->phase = sched::JobPhase::Failed;
    job->error = why;
    job->completions = 1;
    ++failed_;
    job->settledCv.notify_all();
  }
}

void HazardFabric::drain() {
  std::unique_lock<std::mutex> lock(jobsMu_);
  for (;;) {
    bool allSettled = true;
    for (auto& [digest, job] : jobs_) {
      if (!job->done()) {
        allSettled = false;
        break;
      }
    }
    if (allSettled) return;
    bool anyAlive = false;
    for (auto& b : brokers_)
      if (b->state() != BrokerState::Dead) anyAlive = true;
    if (!anyAlive) {
      settleRemainingLocked("every broker fail-stopped");
      return;
    }
    settleCv_.wait_for(lock, std::chrono::milliseconds(20));
  }
}

void HazardFabric::shutdown() {
  {
    std::lock_guard<std::mutex> lock(jobsMu_);
    if (shutdownDone_) return;
    shutdownDone_ = true;
  }
  for (auto& b : brokers_) b->stop();
  {
    std::lock_guard<std::mutex> lock(jobsMu_);
    settleRemainingLocked("fabric shutdown");
  }
  if (ownedSession_ != nullptr) {
    if (!config_.chromeTracePath.empty()) {
      std::vector<telemetry::InstantEvent> instants;
      {
        std::lock_guard<std::mutex> lock(eventsMu_);
        instants = instants_;
      }
      telemetry::writeChromeTraceFile(config_.chromeTracePath,
                                      *ownedSession_, instants);
    }
    telemetry::installSession(nullptr);
  }
}

bool HazardFabric::waitAll(const std::vector<FabricJobHandle>& handles) {
  bool allCompleted = true;
  for (const auto& handle : handles) {
    if (!handle) {
      allCompleted = false;
      continue;
    }
    if (handle->wait() != sched::JobPhase::Completed) allCompleted = false;
  }
  return allCompleted;
}

void HazardFabric::killBroker(int id) {
  AWP_CHECK_MSG(id >= 0 && id < config_.brokers,
                "fabric: broker id out of range");
  brokers_[static_cast<std::size_t>(id)]->kill("chaos killBroker");
}

BrokerState HazardFabric::brokerState(int id) const {
  AWP_CHECK_MSG(id >= 0 && id < config_.brokers,
                "fabric: broker id out of range");
  return brokers_[static_cast<std::size_t>(id)]->state();
}

MembershipView HazardFabric::currentView() {
  return board_->view(clock_.seconds());
}

FabricReport HazardFabric::report() const {
  FabricReport r;
  const MembershipView view = board_->view(clock_.seconds());
  r.viewEpoch = view.epoch;
  r.liveBrokers = view.liveCount();
  {
    std::lock_guard<std::mutex> lock(jobsMu_);
    r.submitted = jobs_.size();
    r.completed = completed_;
    r.failed = failed_;
  }
  for (const auto& b : brokers_) {
    const Broker::Counters c = b->counters();
    r.counters.forwards += c.forwards;
    r.counters.replays += c.replays;
    r.counters.handoffs += c.handoffs;
    r.counters.viewChanges += c.viewChanges;
    r.counters.degradedHolds += c.degradedHolds;
    r.counters.dedupHits += c.dedupHits;
    r.brokers.push_back(b->serviceReport());
  }
  r.transport = transport_->stats();
  r.log = log_->stats();
  r.retrySites = util::retryRegistrySnapshot();
  return r;
}

std::vector<std::string> HazardFabric::events() const {
  std::lock_guard<std::mutex> lock(eventsMu_);
  return events_;
}

void HazardFabric::recordEvent(int broker, const std::string& what) {
  const std::string line =
      "broker " + std::to_string(broker) + ": " + what;
  std::lock_guard<std::mutex> lock(eventsMu_);
  events_.push_back(line);
  if (ownedSession_ != nullptr) {
    telemetry::InstantEvent ev;
    ev.name = line;
    ev.tsNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - ownedSession_->epoch())
            .count());
    instants_.push_back(ev);
  }
}

}  // namespace awp::fabric
