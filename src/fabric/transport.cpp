#include "fabric/transport.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "fault/injector.hpp"
#include "util/error.hpp"
#include "util/hot.hpp"

namespace awp::fabric {

void FabricMessage::setDigest(const std::string& hex) {
  AWP_CHECK_MSG(hex.size() == digest.size(),
                "fabric: spec digest must be 32 hex chars");
  std::memcpy(digest.data(), hex.data(), digest.size());
}

FabricTransport::FabricTransport(int nbrokers, LeaseBoard* board,
                                 std::size_t inboxCapacity)
    : n_(nbrokers), board_(board), cap_(inboxCapacity) {
  AWP_CHECK_MSG(nbrokers >= 1 && nbrokers <= 32,
                "fabric: broker count outside [1, 32]");
  AWP_CHECK_MSG(inboxCapacity >= 1, "fabric: inbox capacity must be >= 1");
  inboxes_.reserve(static_cast<std::size_t>(nbrokers));
  for (int b = 0; b < nbrokers; ++b) {
    auto box = std::make_unique<Inbox>();
    box->ring.resize(cap_);  // preallocated: send never allocates
    inboxes_.push_back(std::move(box));
  }
}

int FabricTransport::consultSites(int broker) {
  if (!fault::injectionEnabled()) return 1;
  fault::FaultInjector* inj = fault::activeInjector();
  if (auto act = inj->check("fabric_delay", broker);
      act && act->kind == fault::FaultKind::RankStall &&
      act->stallSeconds > 0.0) {
    delayed_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(act->stallSeconds));
  }
  if (auto act = inj->check("fabric_drop", broker)) {
    if (act->kind == fault::FaultKind::MessageDuplicate) {
      duplicated_.fetch_add(1, std::memory_order_relaxed);
      return 2;
    }
    return 0;  // any other kind at this site is a loss
  }
  return 1;
}

AWP_HOT FabricTransport::SendResult FabricTransport::send(
    const FabricMessage& m, int to) {
  sent_.fetch_add(1, std::memory_order_relaxed);
  if (to < 0 || to >= n_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return SendResult::Dropped;
  }
  const int copies = consultSites(m.from);
  if (copies == 0) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return SendResult::Dropped;
  }
  Inbox& box = *inboxes_[static_cast<std::size_t>(to)];
  std::lock_guard<std::mutex> lock(box.mu);
  for (int c = 0; c < copies; ++c) {
    if (box.count == cap_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return c == 0 ? SendResult::Dropped : SendResult::Delivered;
    }
    box.ring[(box.head + box.count) % cap_] = m;
    ++box.count;
    delivered_.fetch_add(1, std::memory_order_relaxed);
  }
  return SendResult::Delivered;
}

bool FabricTransport::poll(int broker, FabricMessage& out) {
  if (broker < 0 || broker >= n_) return false;
  Inbox& box = *inboxes_[static_cast<std::size_t>(broker)];
  std::lock_guard<std::mutex> lock(box.mu);
  if (box.count == 0) return false;
  out = std::move(box.ring[box.head]);
  box.ring[box.head] = FabricMessage{};  // release the spec refcount
  box.head = (box.head + 1) % cap_;
  --box.count;
  return true;
}

FabricTransport::RenewOutcome FabricTransport::renewLease(int broker,
                                                          double nowSeconds) {
  if (consultSites(broker) == 0) {
    rpcDrops_.fetch_add(1, std::memory_order_relaxed);
    return RenewOutcome::Dropped;
  }
  return board_->renew(broker, nowSeconds) == LeaseBoard::RenewResult::Ok
             ? RenewOutcome::Ok
             : RenewOutcome::Lapsed;
}

bool FabricTransport::rejoin(int broker, double nowSeconds) {
  if (consultSites(broker) == 0) {
    rpcDrops_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  board_->rejoin(broker, nowSeconds);
  return true;
}

std::optional<MembershipView> FabricTransport::fetchView(int broker,
                                                         double nowSeconds) {
  if (consultSites(broker) == 0) {
    rpcDrops_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  return board_->view(nowSeconds);
}

FabricTransport::Stats FabricTransport::stats() const {
  Stats s;
  s.sent = sent_.load(std::memory_order_relaxed);
  s.delivered = delivered_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.duplicated = duplicated_.load(std::memory_order_relaxed);
  s.delayed = delayed_.load(std::memory_order_relaxed);
  s.rpcDrops = rpcDrops_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace awp::fabric
