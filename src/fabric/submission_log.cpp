#include "fabric/submission_log.hpp"

namespace awp::fabric {

std::uint64_t SubmissionLog::append(const sched::ScenarioSpec& spec,
                                    const std::string& digest, int origin) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = byDigest_.find(digest);
  if (it != byDigest_.end()) {
    ++stats_.dedupedAppends;
    return records_[it->second].seq;
  }
  LogRecord rec;
  rec.seq = nextSeq_++;
  rec.spec = spec;
  rec.digest = digest;
  rec.origin = origin;
  byDigest_[digest] = records_.size();
  records_.push_back(std::move(rec));
  ++stats_.appended;
  return records_.back().seq;
}

void SubmissionLog::markCompleted(const std::string& digest) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = byDigest_.find(digest);
  if (it == byDigest_.end()) return;
  LogRecord& rec = records_[it->second];
  if (!rec.completed) {
    rec.completed = true;
    ++stats_.completedMarks;
  }
}

bool SubmissionLog::isCompleted(const std::string& digest) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = byDigest_.find(digest);
  return it != byDigest_.end() && records_[it->second].completed;
}

bool SubmissionLog::contains(const std::string& digest) const {
  std::lock_guard<std::mutex> lock(mu_);
  return byDigest_.find(digest) != byDigest_.end();
}

std::vector<LogRecord> SubmissionLog::incompleteRecords() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogRecord> out;
  for (const LogRecord& rec : records_)
    if (!rec.completed) out.push_back(rec);
  return out;
}

SubmissionLog::Stats SubmissionLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace awp::fabric
