#include "fabric/broker.hpp"

#include <chrono>
#include <filesystem>
#include <utility>

#include "fault/injector.hpp"
#include "io/checkpoint.hpp"
#include "telemetry/registry.hpp"
#include "util/error.hpp"
#include "util/retry.hpp"

namespace awp::fabric {

namespace fs = std::filesystem;

const char* toString(BrokerState state) {
  switch (state) {
    case BrokerState::Active:
      return "active";
    case BrokerState::Degraded:
      return "degraded";
    case BrokerState::Dead:
      return "dead";
  }
  return "unknown";
}

Broker::Broker(BrokerConfig config, const HashRing* ring,
               FabricTransport* transport, SubmissionLog* log,
               const Stopwatch* clock, SettleFn settle, EventFn event)
    : config_(std::move(config)),
      ring_(ring),
      transport_(transport),
      log_(log),
      clock_(clock),
      settle_(std::move(settle)),
      event_(std::move(event)) {
  service_ = std::make_unique<sched::ScenarioService>(config_.service);
  // Until the first view fetch, route as if everyone is live — the board
  // starts that way, so the optimistic snapshot can only be wrong in the
  // direction the first heartbeat corrects.
  lastView_.epoch = 0;
  for (int b = 0; b < ring_->nbrokers(); ++b)
    lastView_.liveMask |= 1u << static_cast<std::uint32_t>(b);
}

Broker::~Broker() { stop(); }

void Broker::start() {
  if (pump_.joinable()) return;
  stopFlag_.store(false, std::memory_order_relaxed);
  pump_ = std::thread([this] { pumpLoop(); });
}

void Broker::stop() {
  stopFlag_.store(true, std::memory_order_relaxed);
  if (pump_.joinable()) pump_.join();
  // After a fail-stop the service was already aborted; shutdown is
  // idempotent either way.
  service_->shutdown();
}

void Broker::pumpLoop() {
  if (config_.pumpTelemetrySlot >= 0) {
    // Claim the pump's dedicated span lane (slot = base + rank 0). The
    // fault thread-rank tag is only a telemetry slot selector here: every
    // fabric fault site passes its broker id explicitly.
    fault::setThreadRank(0);
    telemetry::setThreadSlotBase(config_.pumpTelemetrySlot);
    telemetry::resetThreadSpans();
  }
  while (!stopFlag_.load(std::memory_order_relaxed)) {
    pumpOnce();
    if (state() == BrokerState::Dead) return;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(config_.pumpIntervalSeconds));
  }
}

void Broker::pumpOnce() {
  if (state() == BrokerState::Dead) return;
  if (fault::injectionEnabled()) {
    if (auto act = fault::activeInjector()->check("broker_death", config_.id);
        act && act->kind == fault::FaultKind::RankDeath) {
      die("broker_death injected at pump tick");
      return;
    }
  }
  const double now = clock_->seconds();
  if (now >= nextHeartbeat_) {
    heartbeat(now);
    nextHeartbeat_ = now + config_.heartbeatSeconds;
  }
  drainInbox();
  reapCompletions();
  if (state() == BrokerState::Active) flushDeferred();
  ++pumpTicks_;
  if (config_.reconcile && config_.reconcileEveryTicks > 0 &&
      pumpTicks_ % static_cast<std::uint64_t>(config_.reconcileEveryTicks) ==
          0)
    config_.reconcile();
}

void Broker::heartbeat(double now) {
  // awplint: manual-span(span emission is gated on owning a dedicated pump lane; an unconditional ScopedSpan would multi-write the shared off-rank slot from concurrent broker pumps)
  telemetry::ManualSpan span;
  if (config_.pumpTelemetrySlot >= 0)
    span.begin(telemetry::Phase::FabricHeartbeat);

  // One renewal attempt per heartbeat — a drop IS a missed renewal, so
  // retrying inside the beat would hide exactly what the degraded-mode
  // ladder is counting. The single-attempt retryCall still lands the
  // per-site attempt/failure stats in the process registry.
  util::RetryPolicy once;
  once.maxAttempts = 1;
  auto outcome = FabricTransport::RenewOutcome::Dropped;
  try {
    util::retryCall(once, "fabric.lease.renew", [&] {
      outcome = transport_->renewLease(config_.id, now);
      if (outcome == FabricTransport::RenewOutcome::Dropped)
        throw TransientError("fabric: lease renewal dropped");
    });
  } catch (const TransientError&) {
  }

  switch (outcome) {
    case FabricTransport::RenewOutcome::Ok:
      missedRenewals_ = 0;
      if (state() == BrokerState::Degraded)
        becomeActive("lease renewed before lapse");
      break;
    case FabricTransport::RenewOutcome::Lapsed:
      // Evicted from the view: the only way back is a rejoin RPC (which
      // bumps the epoch so everyone re-runs ownership).
      if (transport_->rejoin(config_.id, now)) {
        missedRenewals_ = 0;
        becomeActive("rejoined membership after lapse");
      } else {
        ++missedRenewals_;
        if (state() == BrokerState::Active &&
            missedRenewals_ >= config_.degradedAfterMisses)
          enterDegraded("rejoin RPC lost");
      }
      break;
    case FabricTransport::RenewOutcome::Dropped:
      ++missedRenewals_;
      if (state() == BrokerState::Active &&
          missedRenewals_ >= config_.degradedAfterMisses)
        enterDegraded(std::to_string(missedRenewals_) +
                      " consecutive lease renewals lost");
      break;
  }

  if (auto view = transport_->fetchView(config_.id, now); view.has_value()) {
    std::uint64_t adopted;
    {
      std::lock_guard<std::mutex> lock(mu_);
      adopted = lastView_.epoch;
    }
    if (view->epoch != adopted) adoptView(*view);
  }
  span.end();
}

void Broker::adoptView(const MembershipView& view) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    lastView_ = view;
  }
  viewChanges_.fetch_add(1, std::memory_order_relaxed);
  telemetry::count(telemetry::Counter::FabricViewChanges);
  event_(config_.id, "adopted view epoch " + std::to_string(view.epoch) +
                         " (" + std::to_string(view.liveCount()) +
                         " live)");
  if (state() != BrokerState::Active) return;

  // Replay: every incomplete submission-log record this broker owns under
  // the new view and is not already running. Records that were forwarded
  // to (or queued on) a broker that vanished re-run here; duplicates from
  // a still-racing forward are absorbed by the tracked/digest dedup.
  for (const LogRecord& rec : log_->incompleteRecords()) {
    if (ring_->ownerOf(HashRing::pointFor(rec.digest), view.liveMask) !=
        config_.id)
      continue;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (tracked_.count(rec.digest) != 0) continue;
    }
    replays_.fetch_add(1, std::memory_order_relaxed);
    telemetry::count(telemetry::Counter::FabricReplays);
    if (seedJobDirFromPeers(rec)) {
      handoffs_.fetch_add(1, std::memory_order_relaxed);
      telemetry::count(telemetry::Counter::FabricHandoffs);
      event_(config_.id,
             "handoff: adopted checkpoint tier for " + rec.digest);
    }
    submitLocal(std::make_shared<const sched::ScenarioSpec>(rec.spec),
                rec.digest);
  }
}

void Broker::drainInbox() {
  FabricMessage m;
  while (transport_->poll(config_.id, m)) {
    handleMessage(m);
    m = FabricMessage{};
  }
}

void Broker::handleMessage(const FabricMessage& m) {
  if (state() == BrokerState::Dead || m.spec == nullptr) return;
  const std::string digest = m.digestStr();
  if (log_->isCompleted(digest)) {
    // At-least-once forwarding delivered a digest that already finished
    // somewhere: the fabric has (or will get) the settle; absorb.
    dedupHits_.fetch_add(1, std::memory_order_relaxed);
    telemetry::count(telemetry::Counter::FabricDedupHits);
    return;
  }
  if (state() == BrokerState::Degraded) {
    defer(m.spec, digest, /*degradedHold=*/true);
    return;
  }
  route(m.spec, digest, /*fromPump=*/true);
}

void Broker::reapCompletions() {
  std::vector<std::pair<std::string, sched::JobHandle>> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = tracked_.begin(); it != tracked_.end();) {
      if (it->second->done()) {
        done.emplace_back(it->first, it->second);
        it = tracked_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& [digest, job] : done) {
    sched::JobPhase phase;
    sched::ScenarioProducts products;
    std::string error;
    {
      std::lock_guard<std::mutex> lock(job->mutex);
      phase = job->phase;
      products = job->products;
      error = job->error;
    }
    if (phase == sched::JobPhase::Completed) {
      log_->markCompleted(digest);
      settle_(config_.id, digest, phase, std::move(products), "");
    } else if (!service_->aborted() && state() != BrokerState::Dead) {
      // A genuine local failure (retry budget exhausted, rejection).
      // Abort-path failures are NOT settled: the record stays incomplete
      // in the log and the next view's owner replays it.
      settle_(config_.id, digest, phase, {}, error);
    }
  }
}

void Broker::flushDeferred() {
  std::vector<Parked> work;
  {
    std::lock_guard<std::mutex> lock(mu_);
    work.swap(deferred_);
  }
  for (Parked& p : work) route(p.spec, p.digest, /*fromPump=*/true);
}

Broker::Accept Broker::submitClient(
    const std::shared_ptr<const sched::ScenarioSpec>& spec,
    const std::string& digest) {
  switch (state()) {
    case BrokerState::Dead:
      return Accept::Dead;
    case BrokerState::Degraded:
      // Degraded mode still serves completed work from the shared cache
      // tier; everything else is parked for re-forward after rejoin.
      if (auto products = service_->cachedProducts(digest)) {
        telemetry::count(telemetry::Counter::ScenarioCacheHits);
        if (config_.service.publisher != nullptr &&
            spec->kind == sched::ScenarioKind::Wave) {
          // Degraded read-only serving still converges the serving tier:
          // the canonical products republish (duplicates are absorbed).
          sched::SurfaceRunInfo info;
          info.specHash = digest;
          info.spec = *spec;
          info.surfacePath =
              (fs::path(service_->jobDirFor(digest)) / "surface.bin")
                  .string();
          config_.service.publisher->onScenarioComplete(
              info, config_.service.publishOriginId, *products);
        }
        settle_(config_.id, digest, sched::JobPhase::Completed,
                std::move(*products), "");
        return Accept::Owned;
      }
      defer(spec, digest, /*degradedHold=*/true);
      return Accept::Deferred;
    case BrokerState::Active:
      break;
  }
  // Client thread: no spans (only the pump owns this broker's span lane);
  // counters are atomics and stay safe from any thread.
  return route(spec, digest, /*fromPump=*/false);
}

Broker::Accept Broker::route(
    const std::shared_ptr<const sched::ScenarioSpec>& spec,
    const std::string& digest, bool fromPump) {
  // awplint: manual-span(span emission is gated on owning a dedicated pump lane; an unconditional ScopedSpan would multi-write the shared off-rank slot from concurrent broker pumps)
  telemetry::ManualSpan span;
  if (fromPump && config_.pumpTelemetrySlot >= 0)
    span.begin(telemetry::Phase::FabricRoute);
  std::uint32_t liveMask = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    liveMask = lastView_.liveMask;
  }
  const int owner = ring_->ownerOf(HashRing::pointFor(digest), liveMask);
  Accept result;
  if (owner == config_.id) {
    result = submitLocal(spec, digest);
  } else if (owner < 0) {
    defer(spec, digest, /*degradedHold=*/false);
    result = Accept::Deferred;
  } else if (forward(spec, digest, owner, fromPump)) {
    result = Accept::Forwarded;
  } else {
    defer(spec, digest, /*degradedHold=*/false);
    result = Accept::Deferred;
  }
  span.end();
  return result;
}

Broker::Accept Broker::submitLocal(
    const std::shared_ptr<const sched::ScenarioSpec>& spec,
    const std::string& digest) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tracked_.count(digest) != 0) {
      dedupHits_.fetch_add(1, std::memory_order_relaxed);
      telemetry::count(telemetry::Counter::FabricDedupHits);
      return Accept::Owned;
    }
  }
  sched::JobHandle job = service_->submit(*spec);
  std::lock_guard<std::mutex> lock(mu_);
  tracked_[digest] = std::move(job);
  return Accept::Owned;
}

bool Broker::forward(
    const std::shared_ptr<const sched::ScenarioSpec>& spec,
    const std::string& digest, int owner, bool fromPump) {
  // awplint: manual-span(span emission is gated on owning a dedicated pump lane; an unconditional ScopedSpan would multi-write the shared off-rank slot from concurrent broker pumps)
  telemetry::ManualSpan span;
  if (fromPump && config_.pumpTelemetrySlot >= 0)
    span.begin(telemetry::Phase::FabricForward);
  FabricMessage m;
  m.from = config_.id;
  m.spec = spec;
  m.setDigest(digest);
  util::RetryPolicy policy;
  policy.maxAttempts = config_.forwardAttempts;
  policy.baseDelaySeconds = config_.forwardBaseDelaySeconds;
  policy.maxDelaySeconds = 0.05;
  bool sent = true;
  try {
    util::retryCall(policy, "fabric.forward", [&] {
      if (transport_->send(m, owner) ==
          FabricTransport::SendResult::Dropped)
        throw TransientError("fabric: forward to broker " +
                             std::to_string(owner) + " dropped");
    });
  } catch (const Error&) {
    sent = false;  // retry budget exhausted; caller parks the submission
  }
  if (sent) {
    forwards_.fetch_add(1, std::memory_order_relaxed);
    telemetry::count(telemetry::Counter::FabricForwards);
  }
  span.end();
  return sent;
}

void Broker::defer(const std::shared_ptr<const sched::ScenarioSpec>& spec,
                   const std::string& digest, bool degradedHold) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    deferred_.push_back({spec, digest});
  }
  if (degradedHold) {
    degradedHolds_.fetch_add(1, std::memory_order_relaxed);
    telemetry::count(telemetry::Counter::FabricDegradedHolds);
  }
}

bool Broker::seedJobDirFromPeers(const LogRecord& rec) {
  if (rec.spec.kind != sched::ScenarioKind::Wave ||
      rec.spec.checkpointEverySteps <= 0)
    return false;
  // Candidate peers: any other broker whose job dir holds a digest-valid
  // rank-0 generation; prefer the newest (the most progress to keep).
  int best = -1;
  std::uint64_t bestStep = 0;
  for (int b = 0; b < static_cast<int>(config_.peerWorkDirs.size()); ++b) {
    if (b == config_.id || config_.peerWorkDirs[b].empty()) continue;
    const fs::path src = fs::path(config_.peerWorkDirs[b]) /
                         ("job-" + rec.digest) / "ckpt";
    std::error_code ec;
    if (!fs::is_directory(src, ec)) continue;
    const io::CheckpointStore store(src.string());
    if (const auto step = store.newestValidStep(0);
        step.has_value() && (best < 0 || *step > bestStep)) {
      best = b;
      bestStep = *step;
    }
  }
  if (best < 0) return false;

  const fs::path srcJob =
      fs::path(config_.peerWorkDirs[best]) / ("job-" + rec.digest);
  const fs::path dstJob = service_->jobDirFor(rec.digest);
  std::error_code ec;
  fs::create_directories(dstJob / "ckpt", ec);
  // Surface first: a resumed attempt marks the pre-resume sample prefix
  // as already persisted, so the prefix must actually be on disk before
  // any checkpoint is adopted. No surface copy -> no checkpoint adoption
  // -> a fresh (still bit-identical) run that rewrites everything.
  if (!fs::copy_file(srcJob / "surface.bin", dstJob / "surface.bin",
                     fs::copy_options::overwrite_existing, ec) ||
      ec)
    return false;
  io::CheckpointStore srcStore((srcJob / "ckpt").string());
  io::CheckpointStore dstStore((dstJob / "ckpt").string());
  bool adopted = false;
  for (int r = 0; r < rec.spec.nranks; ++r)
    adopted = dstStore.adoptNewestFrom(srcStore, r).has_value() || adopted;
  return adopted;
}

void Broker::kill(const std::string& why) { die("operator kill: " + why); }

void Broker::die(const std::string& why) {
  if (state_.exchange(BrokerState::Dead, std::memory_order_acq_rel) ==
      BrokerState::Dead)
    return;
  event_(config_.id, "fail-stop: " + why);
  // Fail-fast local abort. The lease is simply never renewed again: peers
  // learn of the death from the membership view, exactly as they would
  // for a real crashed process.
  service_->abort(why);
  std::lock_guard<std::mutex> lock(mu_);
  tracked_.clear();
  deferred_.clear();
}

void Broker::enterDegraded(const std::string& why) {
  auto expected = BrokerState::Active;
  if (state_.compare_exchange_strong(expected, BrokerState::Degraded,
                                     std::memory_order_acq_rel))
    event_(config_.id, "degraded: " + why);
}

void Broker::becomeActive(const std::string& why) {
  auto expected = BrokerState::Degraded;
  if (state_.compare_exchange_strong(expected, BrokerState::Active,
                                     std::memory_order_acq_rel))
    event_(config_.id, "active again: " + why);
}

Broker::Counters Broker::counters() const {
  Counters c;
  c.forwards = forwards_.load(std::memory_order_relaxed);
  c.replays = replays_.load(std::memory_order_relaxed);
  c.handoffs = handoffs_.load(std::memory_order_relaxed);
  c.viewChanges = viewChanges_.load(std::memory_order_relaxed);
  c.degradedHolds = degradedHolds_.load(std::memory_order_relaxed);
  c.dedupHits = dedupHits_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace awp::fabric
