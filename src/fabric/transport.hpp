#pragma once
// In-memory broker-to-broker transport with injectable fault sites. Every
// cross-broker interaction — submission forwards AND the control-plane
// lease traffic — goes through here, so one injected partition severs a
// broker from its peers and from the membership board alike.
//
// Fault model (rank attribution is the SENDING broker id):
//   "fabric_delay"  RankStall        — sleep the sender (congested link)
//   "fabric_drop"   MessageDrop      — sender-visible loss: the send (or
//                                      lease RPC) reports failure, which
//                                      is what drives util/retry backoff
//                   MessageDuplicate — deliver the message twice; the
//                                      receiver's digest dedup must absorb
//
// Delivery is at-least-once from the caller's point of view: a Delivered
// result means the message sits in the target's inbox ring, not that the
// target will live to process it — a broker that dies with a full inbox
// loses those copies, and the submission-log replay is what guarantees
// the scenarios still run.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "fabric/membership.hpp"
#include "sched/spec.hpp"
#include "util/guarded.hpp"

namespace awp::fabric {

struct FabricMessage {
  int from = -1;                // sending broker id
  std::uint64_t logSeq = 0;     // submission-log record being forwarded
  std::array<char, 32> digest{};  // spec hashHex (fixed width: no alloc)
  std::shared_ptr<const sched::ScenarioSpec> spec;

  [[nodiscard]] std::string digestStr() const {
    return std::string(digest.data(), digest.size());
  }
  void setDigest(const std::string& hex);
};

class FabricTransport {
 public:
  FabricTransport(int nbrokers, LeaseBoard* board,
                  std::size_t inboxCapacity = 256);

  enum class SendResult { Delivered, Dropped };

  // Data-plane send into `to`'s inbox ring. Registered hot path: fault
  // consults, one mutex, ring stores — no allocation (the message carries
  // a shared_ptr, copied not re-built), no throw. A full inbox reports
  // Dropped (backpressure surfaces as loss; the sender retries).
  SendResult send(const FabricMessage& m, int to);

  // Drain one message from `broker`'s inbox (pump loop).
  bool poll(int broker, FabricMessage& out);

  // --- control plane: lease RPCs routed through the same faulty links ---
  enum class RenewOutcome {
    Ok,       // lease extended
    Dropped,  // RPC lost in flight: the board never saw the renewal
    Lapsed,   // board answered: lease already expired, must rejoin
  };
  RenewOutcome renewLease(int broker, double nowSeconds);
  // Re-admission RPC; false = lost in flight.
  bool rejoin(int broker, double nowSeconds);
  // Membership view read; nullopt = lost in flight (a partitioned broker
  // cannot even observe the view that evicted it).
  [[nodiscard]] std::optional<MembershipView> fetchView(int broker,
                                                        double nowSeconds);

  struct Stats {
    std::uint64_t sent = 0;        // send() calls
    std::uint64_t delivered = 0;   // copies enqueued (duplicates count 2)
    std::uint64_t dropped = 0;     // injected drops + inbox overflow
    std::uint64_t duplicated = 0;  // injected duplications
    std::uint64_t delayed = 0;     // injected sender stalls
    std::uint64_t rpcDrops = 0;    // control-plane RPCs lost
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] int nbrokers() const { return n_; }

 private:
  // Consult "fabric_delay" then "fabric_drop" for a send from `broker`.
  // Returns 0 = drop, 1 = deliver once, 2 = deliver twice.
  int consultSites(int broker);

  struct Inbox {
    std::mutex mu;
    std::vector<FabricMessage> ring AWP_GUARDED_BY(mu);
    std::size_t head AWP_GUARDED_BY(mu) = 0;
    std::size_t count AWP_GUARDED_BY(mu) = 0;
  };

  const int n_;
  LeaseBoard* board_;
  const std::size_t cap_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> duplicated_{0};
  std::atomic<std::uint64_t> delayed_{0};
  std::atomic<std::uint64_t> rpcDrops_{0};
};

}  // namespace awp::fabric
