#include "fabric/hash_ring.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"
#include "util/hot.hpp"
#include "util/retry.hpp"  // util::fnv1a

namespace awp::fabric {

namespace {
// Finalizer from splitmix64: fnv1a alone clusters for short sequential
// labels; the avalanche spreads vnode points across the full ring.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}
}  // namespace

HashRing::HashRing(int nbrokers, int vnodesPerBroker) : nbrokers_(nbrokers) {
  AWP_CHECK_MSG(nbrokers >= 1 && nbrokers <= 32,
                "fabric: broker count outside [1, 32]");
  AWP_CHECK_MSG(vnodesPerBroker >= 1, "fabric: vnodes per broker must be >= 1");
  ring_.reserve(static_cast<std::size_t>(nbrokers) *
                static_cast<std::size_t>(vnodesPerBroker));
  for (int b = 0; b < nbrokers; ++b) {
    for (int v = 0; v < vnodesPerBroker; ++v) {
      const std::string label = "fabric-broker-" + std::to_string(b) +
                                "-vnode-" + std::to_string(v);
      ring_.push_back({mix(util::fnv1a(label)), b});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Vnode& a, const Vnode& b) {
    return a.at != b.at ? a.at < b.at : a.broker < b.broker;
  });
}

std::uint64_t HashRing::pointFor(std::string_view digestHex) {
  return mix(util::fnv1a(digestHex));
}

AWP_HOT int HashRing::ownerOf(std::uint64_t point,
                              std::uint32_t liveMask) const {
  if (ring_.empty() || liveMask == 0) return -1;
  // First vnode at/after the point; end() wraps to begin().
  std::size_t lo = 0;
  std::size_t hi = ring_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (ring_[mid].at < point)
      lo = mid + 1;
    else
      hi = mid;
  }
  for (std::size_t walked = 0; walked < ring_.size(); ++walked) {
    const Vnode& v = ring_[(lo + walked) % ring_.size()];
    if ((liveMask >> static_cast<std::uint32_t>(v.broker)) & 1u)
      return v.broker;
  }
  return -1;
}

}  // namespace awp::fabric
