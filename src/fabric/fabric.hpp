#pragma once
// HazardFabric: N in-process scenario brokers (the vcluster thread-
// simulation idiom, one level up: brokers instead of ranks) stitched into
// one fault-tolerant hazard service. Submissions route by consistent-
// hashing the spec's physics-only digest to an owner broker; ownership is
// held under time-bounded leases renewed by heartbeat; an epoch-numbered
// membership view detects missed renewals and hands a dead broker's hash
// range to the survivors — queued work replays from the replicated
// submission log, running work resumes from the shared checkpoint/
// artifact tier, and at-least-once forwarding is collapsed back to
// exactly-once completion by digest dedup at every layer. A partitioned
// broker degrades instead of failing: it finishes local work, serves
// cache hits, parks new submissions, and re-forwards them after rejoin.
//
// Config (core/runtime_config.hpp fabric_* keys):
//   fabric_brokers, fabric_vnodes, fabric_lease_seconds,
//   fabric_heartbeat_seconds, fabric_degraded_misses,
//   fabric_pump_interval, fabric_forward_attempts, fabric_root_dir.

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/runtime_config.hpp"
#include "fabric/broker.hpp"
#include "fabric/hash_ring.hpp"
#include "fabric/membership.hpp"
#include "fabric/submission_log.hpp"
#include "fabric/transport.hpp"
#include "sched/report.hpp"
#include "sched/spec.hpp"
#include "serve/server.hpp"
#include "telemetry/chrome_trace.hpp"
#include "util/guarded.hpp"
#include "util/retry.hpp"
#include "util/timer.hpp"

namespace awp::fabric {

struct FabricConfig {
  int brokers = 3;
  int vnodes = 64;              // consistent-hash vnodes per broker
  double leaseSeconds = 1.0;
  double heartbeatSeconds = 0.25;
  int degradedAfterMisses = 2;
  double pumpIntervalSeconds = 0.01;
  int forwardAttempts = 4;
  std::size_t inboxCapacity = 256;
  // Per-broker work dirs live at <rootDir>/broker-<i>; the shared cache
  // tier at <rootDir>/cache. "" = <tmp>/awp-fabric.
  std::string rootDir;
  // Telemetry: when true and no session is installed, the fabric owns one
  // Session sized brokers*coreBudget rank lanes + a dispatcher lane and a
  // pump lane per broker, so every span writer in the fabric has a
  // dedicated slot.
  bool telemetry = false;
  std::size_t telemetryRingCapacity = std::size_t{1} << 16;
  std::string chromeTracePath;  // whole-fabric trace at shutdown
  // Per-broker service template. workDir/cacheDir/telemetry fields are
  // overridden per broker; cacheProducts is forced on (replay and
  // degraded-mode serving both need the shared product tier).
  sched::ServiceConfig service;
  // Serving-tier knobs (serve_* keys). The fabric owns one ProductServer
  // over the shared cache tier; every broker publishes into it.
  serve::ServeConfig serve;

  static FabricConfig fromRuntime(const core::RuntimeConfig& rc);
};

// One client-visible scenario of the fabric, keyed by spec digest.
// Duplicate submissions coalesce onto one handle; `completions` stays at
// 1 however many brokers raced to finish the digest (the exactly-once
// check of the chaos tests).
struct FabricJob {
  sched::ScenarioSpec spec;
  std::string digest;

  mutable std::mutex mu;
  std::condition_variable settledCv;
  bool settled AWP_GUARDED_BY(mu) = false;
  sched::JobPhase phase AWP_GUARDED_BY(mu) = sched::JobPhase::Queued;
  std::string error AWP_GUARDED_BY(mu);
  sched::ScenarioProducts products AWP_GUARDED_BY(mu);
  // submissions: client submissions coalesced onto this digest.
  // completions: settle deliveries accepted (dedup holds it at 1).
  int submissions AWP_GUARDED_BY(mu) = 0;
  int completions AWP_GUARDED_BY(mu) = 0;

  // Block until the digest settles; returns the terminal phase.
  sched::JobPhase wait();
  [[nodiscard]] bool done() const;
};

using FabricJobHandle = std::shared_ptr<FabricJob>;

struct FabricReport {
  std::uint64_t viewEpoch = 0;
  int liveBrokers = 0;
  std::uint64_t submitted = 0;   // distinct digests accepted
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  Broker::Counters counters;     // summed across brokers
  FabricTransport::Stats transport;
  SubmissionLog::Stats log;
  std::map<std::string, util::RetrySiteStats> retrySites;
  std::vector<sched::ServiceReport> brokers;  // index = broker id
};

class HazardFabric {
 public:
  explicit HazardFabric(FabricConfig config);
  ~HazardFabric();
  HazardFabric(const HazardFabric&) = delete;
  HazardFabric& operator=(const HazardFabric&) = delete;

  // Route a scenario into the fabric. Never blocks on execution: returns
  // a handle that settles when ANY broker completes (or terminally fails)
  // the digest. Resubmitting an in-flight or completed digest coalesces.
  FabricJobHandle submit(sched::ScenarioSpec spec);

  // Block until every submitted digest settles. If every broker has
  // fail-stopped with work still outstanding, the remaining handles are
  // settled as Failed (degraded-mode parking only helps while somebody
  // can eventually run the work).
  void drain();

  // Stop the pumps, settle anything left as Failed, shut the broker
  // services down. Idempotent; the destructor calls it.
  void shutdown();

  // Chaos hook: operator fail-stop of one broker. Its lease lapses and
  // its hash range moves at the next membership epoch.
  void killBroker(int id);

  // Block until each handle settles; true iff every one completed (null
  // handles count as failures). Catalog-sized batches — the earthquake-
  // cycle bridge submits a whole event catalog at once — wait on their
  // own handles rather than drain(), which would also wait on unrelated
  // submitters.
  static bool waitAll(const std::vector<FabricJobHandle>& handles);

  // --- serving tier ----------------------------------------------------
  // The fabric-wide ProductServer: every broker (including degraded ones
  // serving read-only cache hits) publishes tile versions into it, so
  // queries and subscriptions span the whole catalog regardless of which
  // broker ran — or re-ran — each scenario.
  [[nodiscard]] serve::ProductServer& productServer() { return *server_; }
  serve::ExceedanceResult exceedance(const serve::ExceedanceQuery& query) {
    return server_->exceedance(query);
  }
  std::uint64_t subscribeTiles(serve::Field field, serve::Extent extent,
                               serve::SubscriptionCallback callback) {
    return server_->subscribe(field, extent, std::move(callback));
  }
  void unsubscribeTiles(std::uint64_t id) { server_->unsubscribe(id); }

  [[nodiscard]] BrokerState brokerState(int id) const;
  [[nodiscard]] MembershipView currentView();
  [[nodiscard]] FabricReport report() const;
  [[nodiscard]] const FabricConfig& config() const { return config_; }
  // Fabric timeline (death/degrade/rejoin/handoff markers), for tests and
  // the chrome trace's service lane.
  [[nodiscard]] std::vector<std::string> events() const;

 private:
  void settleJob(int broker, const std::string& digest,
                 sched::ScenarioProducts products, sched::JobPhase phase,
                 const std::string& error);
  void recordEvent(int broker, const std::string& what);
  void settleRemainingLocked(const std::string& why) AWP_REQUIRES(jobsMu_);

  FabricConfig config_;
  Stopwatch clock_;

  std::unique_ptr<telemetry::Session> ownedSession_;

  std::unique_ptr<LeaseBoard> board_;
  std::unique_ptr<HashRing> ring_;
  std::unique_ptr<FabricTransport> transport_;
  std::unique_ptr<SubmissionLog> log_;
  // Serving tier: the chunk cache shares the brokers' on-disk cache dir,
  // so tile chunks and memoized products live in one content-addressed
  // tier. Declared before brokers_ — broker services publish into the
  // server, so it must be destroyed after them.
  std::unique_ptr<sched::ArtifactCache> serveCache_;
  std::unique_ptr<serve::ProductServer> server_;
  std::vector<std::unique_ptr<Broker>> brokers_;

  mutable std::mutex jobsMu_;
  std::condition_variable settleCv_;
  std::map<std::string, FabricJobHandle> jobs_ AWP_GUARDED_BY(jobsMu_);
  std::uint64_t completed_ AWP_GUARDED_BY(jobsMu_) = 0;
  std::uint64_t failed_ AWP_GUARDED_BY(jobsMu_) = 0;
  // Round-robin entry broker cursor.
  std::uint64_t nextEntry_ AWP_GUARDED_BY(jobsMu_) = 0;
  bool shutdownDone_ AWP_GUARDED_BY(jobsMu_) = false;

  mutable std::mutex eventsMu_;
  std::vector<std::string> events_ AWP_GUARDED_BY(eventsMu_);
  std::vector<telemetry::InstantEvent> instants_ AWP_GUARDED_BY(eventsMu_);
};

}  // namespace awp::fabric
