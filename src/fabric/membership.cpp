#include "fabric/membership.hpp"

#include "util/error.hpp"
#include "util/hot.hpp"

namespace awp::fabric {

LeaseBoard::LeaseBoard(int nbrokers, double leaseSeconds)
    : nbrokers_(nbrokers),
      leaseSeconds_(leaseSeconds),
      deadline_(static_cast<std::size_t>(nbrokers), leaseSeconds),
      live_(static_cast<std::size_t>(nbrokers), 1),
      dead_(static_cast<std::size_t>(nbrokers), 0) {
  AWP_CHECK_MSG(nbrokers >= 1 && nbrokers <= 32,
                "fabric: broker count outside [1, 32]");
  AWP_CHECK_MSG(leaseSeconds > 0.0, "fabric: lease duration must be > 0");
}

void LeaseBoard::evaluateLocked(double nowSeconds) {
  bool changed = false;
  for (int b = 0; b < nbrokers_; ++b) {
    const auto i = static_cast<std::size_t>(b);
    if (live_[i] != 0 && deadline_[i] < nowSeconds) {
      live_[i] = 0;
      changed = true;
    }
  }
  if (changed) ++epoch_;
}

AWP_HOT LeaseBoard::RenewResult LeaseBoard::renew(int broker,
                                                  double nowSeconds) {
  const auto i = static_cast<std::size_t>(broker);
  std::lock_guard<std::mutex> lock(mu_);
  evaluateLocked(nowSeconds);
  if (broker < 0 || broker >= nbrokers_ || live_[i] == 0)
    return RenewResult::Lapsed;
  deadline_[i] = nowSeconds + leaseSeconds_;
  return RenewResult::Ok;
}

void LeaseBoard::rejoin(int broker, double nowSeconds) {
  if (broker < 0 || broker >= nbrokers_) return;
  const auto i = static_cast<std::size_t>(broker);
  std::lock_guard<std::mutex> lock(mu_);
  evaluateLocked(nowSeconds);
  if (dead_[i] != 0) return;  // fail-stop is permanent
  if (live_[i] == 0) {
    live_[i] = 1;
    ++epoch_;
  }
  deadline_[i] = nowSeconds + leaseSeconds_;
}

void LeaseBoard::markDead(int broker) {
  if (broker < 0 || broker >= nbrokers_) return;
  const auto i = static_cast<std::size_t>(broker);
  std::lock_guard<std::mutex> lock(mu_);
  dead_[i] = 1;
  if (live_[i] != 0) {
    live_[i] = 0;
    ++epoch_;
  }
}

MembershipView LeaseBoard::view(double nowSeconds) {
  std::lock_guard<std::mutex> lock(mu_);
  evaluateLocked(nowSeconds);
  MembershipView v;
  v.epoch = epoch_;
  for (int b = 0; b < nbrokers_; ++b)
    if (live_[static_cast<std::size_t>(b)] != 0)
      v.liveMask |= 1u << static_cast<std::uint32_t>(b);
  return v;
}

}  // namespace awp::fabric
