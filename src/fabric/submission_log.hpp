#pragma once
// Replicated submission log: the fabric's source of truth for which
// scenarios have been accepted and which have completed. Every client
// submission is appended (idempotently, keyed by the spec digest) BEFORE
// any routing happens, so a forward lost in flight, a dead owner, or a
// partitioned entry broker can never lose a scenario — the record stays
// incomplete, and whichever broker owns the digest under the next
// membership view replays it.
//
// In this thread-simulation fabric the log is one shared structure (the
// stand-in for a quorum-replicated log); it is deliberately NOT routed
// through FabricTransport's fault sites, matching the checkpoint tier: a
// partition severs brokers from each other, not from reliable storage.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sched/spec.hpp"
#include "util/guarded.hpp"

namespace awp::fabric {

struct LogRecord {
  std::uint64_t seq = 0;       // 1-based append order
  sched::ScenarioSpec spec;
  std::string digest;          // spec.hashHex()
  int origin = -1;             // broker that accepted the client submission
  bool completed = false;
};

class SubmissionLog {
 public:
  // Idempotent append: a digest already present returns the existing
  // record's seq (and counts a dedup) — at-least-once forwarding and
  // client re-submission collapse onto one record.
  std::uint64_t append(const sched::ScenarioSpec& spec,
                       const std::string& digest, int origin);

  // Mark the digest's record complete (idempotent; unknown digest ignored:
  // a replayed completion can race a late append).
  void markCompleted(const std::string& digest);

  [[nodiscard]] bool isCompleted(const std::string& digest) const;
  [[nodiscard]] bool contains(const std::string& digest) const;

  // Snapshot of every record not yet marked complete, in seq order — the
  // replay worklist a broker scans after a membership epoch bump.
  [[nodiscard]] std::vector<LogRecord> incompleteRecords() const;

  struct Stats {
    std::uint64_t appended = 0;        // distinct records
    std::uint64_t dedupedAppends = 0;  // appends absorbed by an existing one
    std::uint64_t completedMarks = 0;  // first-time completion marks
  };
  [[nodiscard]] Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::vector<LogRecord> records_ AWP_GUARDED_BY(mu_);
  // digest -> records_ index
  std::map<std::string, std::size_t> byDigest_ AWP_GUARDED_BY(mu_);
  std::uint64_t nextSeq_ AWP_GUARDED_BY(mu_) = 1;
  Stats stats_ AWP_GUARDED_BY(mu_);
};

}  // namespace awp::fabric
