#pragma once
// One scenario broker of the hazard fabric: a ScenarioService wrapped in a
// pump thread that renews the broker's membership lease, drains its
// transport inbox, replays submission-log records it newly owns after a
// membership epoch bump, and reaps local completions back to the fabric.
//
// State machine:
//   Active   — routes submissions by the consistent-hash ring: owned
//              digests run locally, the rest are forwarded (at-least-once
//              under util/retry; exhaustion defers for the next tick).
//   Degraded — entered after `degradedAfterMisses` consecutive failed
//              lease renewals (a partition, not a crash). Local running
//              work finishes, cache hits are still served, and every new
//              submission is parked for re-forward; a successful renewal
//              or rejoin flushes the parked work and returns to Active.
//   Dead     — fail-stop ("broker_death" at a pump tick, or an operator
//              kill). The local service aborts, the lease is simply never
//              renewed again, and the membership view's next epoch hands
//              the broker's hash range to the survivors, which resume its
//              jobs from the checkpoint tier and replay its queued ones
//              from the submission log.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fabric/hash_ring.hpp"
#include "fabric/membership.hpp"
#include "fabric/submission_log.hpp"
#include "fabric/transport.hpp"
#include "sched/service.hpp"
#include "util/guarded.hpp"
#include "util/timer.hpp"

namespace awp::fabric {

enum class BrokerState { Active, Degraded, Dead };

const char* toString(BrokerState state);

struct BrokerConfig {
  int id = 0;
  double heartbeatSeconds = 0.25;
  int degradedAfterMisses = 2;
  double pumpIntervalSeconds = 0.01;
  int forwardAttempts = 4;            // util/retry attempts per forward
  double forwardBaseDelaySeconds = 0.002;
  // Dedicated telemetry slot for the pump thread's spans; -1 = no spans
  // (counters still recorded). The fabric assigns a lane per broker when
  // it owns the session.
  int pumpTelemetrySlot = -1;
  // Work-dir roots of ALL brokers, indexed by broker id — the handoff
  // scans peers' job dirs for the newest valid checkpoint generation.
  std::vector<std::string> peerWorkDirs;
  // Serving-tier anti-entropy hook, called every reconcileEveryTicks pump
  // ticks (0 = never). The fabric binds it to ProductServer::reconcile;
  // the broker stays ignorant of tiles. Runs in Degraded mode too — a
  // partitioned broker keeps converging its subscribers read-only.
  std::function<void()> reconcile;
  int reconcileEveryTicks = 0;
  sched::ServiceConfig service;
};

class Broker {
 public:
  // Fabric callbacks. settle: a digest reached a terminal phase here
  // (products populated when Completed). event: human-readable fabric
  // timeline marker (death, degrade, rejoin, handoff).
  using SettleFn = std::function<void(
      int broker, const std::string& digest, sched::JobPhase phase,
      sched::ScenarioProducts products, const std::string& error)>;
  using EventFn = std::function<void(int broker, const std::string& what)>;

  Broker(BrokerConfig config, const HashRing* ring,
         FabricTransport* transport, SubmissionLog* log,
         const Stopwatch* clock, SettleFn settle, EventFn event);
  ~Broker();
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  void start();
  // Join the pump and shut the local service down (normal teardown; a
  // Dead broker's service was already aborted).
  void stop();

  // Entry-point routing for a client submission (fabric caller thread).
  enum class Accept {
    Owned,      // ran (or deduped) locally
    Forwarded,  // handed to the owner broker
    Deferred,   // parked: degraded, no live owner, or forward exhausted
    Dead,       // this broker is fail-stopped; pick another entry
  };
  Accept submitClient(const std::shared_ptr<const sched::ScenarioSpec>& spec,
                      const std::string& digest);

  // Operator fail-stop (the chaos tests' killBroker). Idempotent.
  void kill(const std::string& why);

  [[nodiscard]] BrokerState state() const {
    return state_.load(std::memory_order_acquire);
  }
  [[nodiscard]] int id() const { return config_.id; }
  [[nodiscard]] sched::ServiceReport serviceReport() const {
    return service_->report();
  }
  [[nodiscard]] const sched::ScenarioService& service() const {
    return *service_;
  }

  struct Counters {
    std::uint64_t forwards = 0;       // submissions sent to a remote owner
    std::uint64_t replays = 0;        // log records replayed after a view change
    std::uint64_t handoffs = 0;       // job dirs seeded from a peer's tier
    std::uint64_t viewChanges = 0;    // membership epoch bumps observed
    std::uint64_t degradedHolds = 0;  // submissions parked while degraded
    std::uint64_t dedupHits = 0;      // duplicate digests absorbed
  };
  [[nodiscard]] Counters counters() const;

 private:
  void pumpLoop();
  void pumpOnce();
  void heartbeat(double now);
  void adoptView(const MembershipView& view);
  void drainInbox();
  void handleMessage(const FabricMessage& m);
  void reapCompletions();
  void flushDeferred();
  // Route one submission under the last adopted view. mu_ must NOT be
  // held. `fromPump` gates span emission to the pump's dedicated lane.
  Accept route(const std::shared_ptr<const sched::ScenarioSpec>& spec,
               const std::string& digest, bool fromPump);
  Accept submitLocal(const std::shared_ptr<const sched::ScenarioSpec>& spec,
                     const std::string& digest);
  bool forward(const std::shared_ptr<const sched::ScenarioSpec>& spec,
               const std::string& digest, int owner, bool fromPump);
  void defer(const std::shared_ptr<const sched::ScenarioSpec>& spec,
             const std::string& digest, bool degradedHold);
  // Seed this broker's job dir for `rec` from the peer holding the newest
  // digest-valid checkpoint; true when anything was adopted.
  bool seedJobDirFromPeers(const LogRecord& rec);
  void die(const std::string& why);
  void enterDegraded(const std::string& why);
  void becomeActive(const std::string& why);

  BrokerConfig config_;
  const HashRing* ring_;
  FabricTransport* transport_;
  SubmissionLog* log_;
  const Stopwatch* clock_;
  SettleFn settle_;
  EventFn event_;

  std::unique_ptr<sched::ScenarioService> service_;
  std::atomic<BrokerState> state_{BrokerState::Active};

  // Pump-thread-only timing state.
  double nextHeartbeat_ = 0.0;
  int missedRenewals_ = 0;
  std::uint64_t pumpTicks_ = 0;

  struct Parked {
    std::shared_ptr<const sched::ScenarioSpec> spec;
    std::string digest;
  };

  mutable std::mutex mu_;
  MembershipView lastView_ AWP_GUARDED_BY(mu_);  // routing snapshot
  std::map<std::string, sched::JobHandle> tracked_
      AWP_GUARDED_BY(mu_);  // digest -> local job
  std::vector<Parked> deferred_ AWP_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> forwards_{0};
  std::atomic<std::uint64_t> replays_{0};
  std::atomic<std::uint64_t> handoffs_{0};
  std::atomic<std::uint64_t> viewChanges_{0};
  std::atomic<std::uint64_t> degradedHolds_{0};
  std::atomic<std::uint64_t> dedupHits_{0};

  std::atomic<bool> stopFlag_{false};
  std::thread pump_;
};

}  // namespace awp::fabric
