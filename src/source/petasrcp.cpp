#include "source/petasrcp.hpp"

#include <sys/stat.h>

#include <cstring>
#include <fstream>
#include <sstream>

#include "io/shared_file.hpp"
#include "util/error.hpp"

namespace awp::source {

namespace {

constexpr std::uint64_t kMagic = 0x4157505352433131ULL;  // "AWPSRC11"

std::string segPath(const std::string& dir, int rank, int segment) {
  return dir + "/src_rank" + std::to_string(rank) + "_seg" +
         std::to_string(segment) + ".bin";
}

std::string infoPath(const std::string& dir) { return dir + "/src_info.txt"; }

}  // namespace

SourcePartitionInfo partitionSources(
    const std::vector<core::MomentRateSource>& sources,
    const vcluster::CartTopology& topo, const grid::GridDims& globalDims,
    std::size_t stepsPerSegment, const std::string& dir) {
  AWP_CHECK(stepsPerSegment > 0);
  ::mkdir(dir.c_str(), 0755);

  std::size_t totalSteps = 0;
  for (const auto& s : sources) totalSteps = std::max(totalSteps, s.stepCount());
  const int segments = totalSteps == 0
                           ? 1
                           : static_cast<int>((totalSteps + stepsPerSegment -
                                               1) /
                                              stepsPerSegment);

  SourcePartitionInfo info;
  info.ranks = topo.size();
  info.segments = segments;
  info.stepsPerSegment = stepsPerSegment;
  info.totalSteps = totalSteps;

  const mesh::MeshSpec spec{globalDims.nx, globalDims.ny, globalDims.nz,
                            1.0, 0.0, 0.0};

  for (int rank = 0; rank < topo.size(); ++rank) {
    const auto sub = mesh::subdomainFor(topo, spec, rank);
    std::vector<const core::MomentRateSource*> mine;
    for (const auto& s : sources) {
      if (s.gi >= sub.x.begin && s.gi < sub.x.end && s.gj >= sub.y.begin &&
          s.gj < sub.y.end && s.gk >= sub.z.begin && s.gk < sub.z.end)
        mine.push_back(&s);
    }

    for (int seg = 0; seg < segments; ++seg) {
      const std::size_t segStart = static_cast<std::size_t>(seg) *
                                   stepsPerSegment;
      std::vector<std::byte> blob;
      auto put = [&](const void* p, std::size_t n) {
        const auto* b = static_cast<const std::byte*>(p);
        blob.insert(blob.end(), b, b + n);
      };
      const std::uint64_t header[6] = {
          kMagic,
          static_cast<std::uint64_t>(rank),
          static_cast<std::uint64_t>(seg),
          segStart,
          stepsPerSegment,
          mine.size()};
      put(header, sizeof(header));
      for (const auto* s : mine) {
        const std::uint64_t pos[3] = {s->gi, s->gj, s->gk};
        put(pos, sizeof(pos));
        for (const auto& comp : s->mdot) {
          std::size_t len = 0;
          if (comp.size() > segStart)
            len = std::min(stepsPerSegment, comp.size() - segStart);
          const std::uint64_t len64 = len;
          put(&len64, sizeof(len64));
          if (len > 0) put(comp.data() + segStart, len * sizeof(float));
        }
      }
      io::writeFile(segPath(dir, rank, seg), blob);
      info.maxFileBytes = std::max<std::uint64_t>(info.maxFileBytes,
                                                  blob.size());
      info.totalBytes += blob.size();
    }
  }

  std::ofstream out(infoPath(dir));
  out << info.ranks << " " << info.segments << " " << info.stepsPerSegment
      << " " << info.totalSteps << " " << info.maxFileBytes << " "
      << info.totalBytes << "\n";
  return info;
}

std::vector<core::MomentRateSource> loadSegment(const std::string& dir,
                                                int rank, int segment) {
  const std::string text = io::readTextFile(segPath(dir, rank, segment));
  const auto* data = reinterpret_cast<const std::byte*>(text.data());
  const std::size_t size = text.size();
  std::size_t at = 0;
  auto get = [&](void* p, std::size_t n) {
    AWP_CHECK_MSG(at + n <= size, "truncated source segment file");
    std::memcpy(p, data + at, n);
    at += n;
  };

  std::uint64_t header[6];
  get(header, sizeof(header));
  AWP_CHECK_MSG(header[0] == kMagic, "not a source segment file");
  const std::size_t segStart = header[3];
  const std::uint64_t nSources = header[5];

  std::vector<core::MomentRateSource> out;
  out.reserve(nSources);
  for (std::uint64_t n = 0; n < nSources; ++n) {
    core::MomentRateSource s;
    std::uint64_t pos[3];
    get(pos, sizeof(pos));
    s.gi = pos[0];
    s.gj = pos[1];
    s.gk = pos[2];
    for (auto& comp : s.mdot) {
      std::uint64_t len;
      get(&len, sizeof(len));
      if (len > 0) {
        comp.assign(segStart + len, 0.0f);
        get(comp.data() + segStart, len * sizeof(float));
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

SourcePartitionInfo readPartitionInfo(const std::string& dir) {
  std::istringstream in(io::readTextFile(infoPath(dir)));
  SourcePartitionInfo info;
  in >> info.ranks >> info.segments >> info.stepsPerSegment >>
      info.totalSteps >> info.maxFileBytes >> info.totalBytes;
  AWP_CHECK_MSG(in, "malformed source partition info");
  return info;
}

}  // namespace awp::source
