#include "source/dsrcg.hpp"

#include <cmath>
#include <map>
#include <tuple>

#include "util/error.hpp"
#include "util/filter.hpp"

namespace awp::source {

namespace {

using Key = std::tuple<std::size_t, std::size_t, std::size_t>;

// Accumulate a component series into a source map entry.
void accumulate(std::map<Key, core::MomentRateSource>& map, const Key& key,
                int component, const std::vector<float>& series) {
  auto& src = map[key];
  auto [gi, gj, gk] = key;
  src.gi = gi;
  src.gj = gj;
  src.gk = gk;
  auto& dst = src.mdot[static_cast<std::size_t>(component)];
  if (dst.size() < series.size()) dst.resize(series.size(), 0.0f);
  for (std::size_t t = 0; t < series.size(); ++t) dst[t] += series[t];
}

std::vector<core::MomentRateSource> drain(
    std::map<Key, core::MomentRateSource>&& map) {
  std::vector<core::MomentRateSource> out;
  out.reserve(map.size());
  for (auto& [key, src] : map) out.push_back(std::move(src));
  return out;
}

}  // namespace

std::vector<core::MomentRateSource> fromRupture(
    const rupture::FaultHistory& fault, const FaultTrace& trace,
    const WaveModelTarget& target, const FilterConfig& filter) {
  AWP_CHECK_MSG(fault.nx > 0 && fault.recordedSteps > 0,
                "empty fault history (gather() returns data on rank 0 only)");
  const double dtIn = fault.dt * fault.timeDecimation;
  const double faultArea = fault.h * fault.h;

  std::map<Key, core::MomentRateSource> map;
  ButterworthLowpass lp(filter.order, filter.cutoffHz, dtIn);

  for (std::size_t k = 0; k < fault.nz; ++k) {
    const double depth = static_cast<double>(fault.nz - 1 - k) * fault.h;
    for (std::size_t i = 0; i < fault.nx; ++i) {
      const std::size_t node = i + fault.nx * k;
      const double mu = fault.rigidity[node];
      if (fault.peakSlipRate[node] <= 0.0f) continue;

      // Position/orientation on the segmented trace (proportional mapping
      // of along-strike distance).
      const double s = (static_cast<double>(i) + 0.5) /
                       static_cast<double>(fault.nx) * trace.length();
      const auto sample = trace.at(s);
      const auto gi = static_cast<std::size_t>(
          std::lround(sample.position.x / target.h));
      const auto gj = static_cast<std::size_t>(
          std::lround(sample.position.y / target.h));
      const auto depthCells =
          static_cast<std::size_t>(std::lround(depth / target.h));
      if (gi >= target.dims.nx || gj >= target.dims.ny) continue;
      if (depthCells >= target.dims.nz) continue;
      const std::size_t gk = target.dims.nz - 1 - depthCells;
      const Key key{gi, gj, gk};

      // Filter + resample each slip-rate component, then scale to moment
      // rate (μ A Δv).
      auto processed = [&](const std::vector<float>& hist) {
        std::vector<double> series(hist.begin(), hist.end());
        // Zero-pad past the end so the causal filter's delayed tail is not
        // truncated (it carries a significant share of the moment).
        const auto pad = static_cast<std::size_t>(
            std::ceil(4.0 / (filter.cutoffHz * dtIn)));
        series.resize(series.size() + pad, 0.0);
        series = lp.apply(series);
        series = resampleLinear(series, dtIn, target.dt);
        std::vector<float> out(series.size());
        for (std::size_t t = 0; t < series.size(); ++t)
          out[t] = static_cast<float>(series[t] * mu * faultArea);
        return out;
      };
      std::vector<float> histX(fault.recordedSteps), histZ(fault.recordedSteps);
      for (std::size_t t = 0; t < fault.recordedSteps; ++t) {
        histX[t] = fault.slipRateX[node * fault.recordedSteps + t];
        histZ[t] = fault.slipRateZ[node * fault.recordedSteps + t];
      }
      const auto strikeRate = processed(histX);
      const auto dipRate = processed(histZ);

      // Moment tensor rates: Ṁ = μ A Δv (s⊗n + n⊗s).
      const double sx = sample.strikeX, sy = sample.strikeY;
      const double nx = sample.normalX, ny = sample.normalY;
      auto scaled = [&](const std::vector<float>& r, double c) {
        std::vector<float> out(r.size());
        for (std::size_t t = 0; t < r.size(); ++t)
          out[t] = static_cast<float>(r[t] * c);
        return out;
      };
      if (std::abs(2.0 * sx * nx) > 1e-12)
        accumulate(map, key, core::MXX, scaled(strikeRate, 2.0 * sx * nx));
      if (std::abs(2.0 * sy * ny) > 1e-12)
        accumulate(map, key, core::MYY, scaled(strikeRate, 2.0 * sy * ny));
      accumulate(map, key, core::MXY,
                 scaled(strikeRate, sx * ny + sy * nx));
      accumulate(map, key, core::MXZ, scaled(dipRate, nx));
      accumulate(map, key, core::MYZ, scaled(dipRate, ny));
    }
  }
  return drain(std::move(map));
}

std::vector<core::MomentRateSource> kinematicSource(
    const KinematicScenario& scenario, const FaultTrace& trace,
    const WaveModelTarget& target) {
  const double hs =
      scenario.subfaultSpacing > 0.0 ? scenario.subfaultSpacing : target.h;
  const auto ns = static_cast<std::size_t>(
      std::max(1.0, std::floor(scenario.faultLength / hs)));
  const auto nd = static_cast<std::size_t>(
      std::max(1.0, std::floor(scenario.faultDepth / hs)));

  // Elliptically tapered slip; peak amplitude set by the target moment.
  const double m0Target =
      std::pow(10.0, 1.5 * scenario.targetMw + 9.1);
  double shapeSum = 0.0;
  auto shape = [&](std::size_t i, std::size_t k) {
    const double fs = (static_cast<double>(i) + 0.5) / ns * 2.0 - 1.0;
    const double fd = (static_cast<double>(k) + 0.5) / nd;
    const double v = (1.0 - fs * fs) * (1.0 - fd * fd);
    return v > 0.0 ? std::sqrt(v) : 0.0;
  };
  for (std::size_t k = 0; k < nd; ++k)
    for (std::size_t i = 0; i < ns; ++i) shapeSum += shape(i, k);
  const double slipPeak =
      m0Target / (scenario.rigidity * hs * hs * shapeSum);

  // Triangular source time function of duration riseTime.
  const double hypo = scenario.reverseDirection
                          ? scenario.faultLength -
                                scenario.hypocenterAlongStrike
                          : scenario.hypocenterAlongStrike;

  double tEnd = 0.0;
  for (std::size_t k = 0; k < nd; ++k)
    for (std::size_t i = 0; i < ns; ++i) {
      const double s = (static_cast<double>(i) + 0.5) * hs;
      const double d = (static_cast<double>(k) + 0.5) * hs;
      const double dist = std::hypot(s - hypo, d);
      tEnd = std::max(tEnd, dist / scenario.ruptureSpeed +
                                scenario.riseTime);
    }
  const auto nSteps =
      static_cast<std::size_t>(std::ceil(tEnd / target.dt)) + 1;

  std::map<Key, core::MomentRateSource> map;
  for (std::size_t k = 0; k < nd; ++k) {
    const double depth = (static_cast<double>(k) + 0.5) * hs;
    for (std::size_t i = 0; i < ns; ++i) {
      const double slip = slipPeak * shape(i, k);
      if (slip <= 0.0) continue;
      const double s = (static_cast<double>(i) + 0.5) * hs;
      const double tr =
          std::hypot(s - hypo, depth) / scenario.ruptureSpeed;

      // The fault occupies the first `faultLength` meters of the trace's
      // arclength (a shorter fault ruptures only part of the trace).
      const auto sample = trace.at(s);
      const auto gi = static_cast<std::size_t>(
          std::lround(sample.position.x / target.h));
      const auto gj = static_cast<std::size_t>(
          std::lround(sample.position.y / target.h));
      const auto depthCells =
          static_cast<std::size_t>(std::lround(depth / target.h));
      if (gi >= target.dims.nx || gj >= target.dims.ny ||
          depthCells >= target.dims.nz)
        continue;
      const std::size_t gk = target.dims.nz - 1 - depthCells;

      // Moment rate: triangle of area μ A slip starting at tr.
      const double m0sub = scenario.rigidity * hs * hs * slip;
      const double half = scenario.riseTime / 2.0;
      std::vector<float> rate(nSteps, 0.0f);
      for (std::size_t t = 0; t < nSteps; ++t) {
        const double tt = static_cast<double>(t) * target.dt - tr;
        if (tt <= 0.0 || tt >= scenario.riseTime) continue;
        const double tri = (tt < half ? tt / half : (2.0 - tt / half)) /
                           half;  // peak 1/half, area 1
        rate[t] = static_cast<float>(m0sub * tri);
      }

      const double sx = sample.strikeX, sy = sample.strikeY;
      const double nx = sample.normalX, ny = sample.normalY;
      const Key key{gi, gj, gk};
      auto scaled = [&](double c) {
        std::vector<float> out(rate.size());
        for (std::size_t t = 0; t < rate.size(); ++t)
          out[t] = static_cast<float>(rate[t] * c);
        return out;
      };
      if (std::abs(2.0 * sx * nx) > 1e-12)
        accumulate(map, key, core::MXX, scaled(2.0 * sx * nx));
      if (std::abs(2.0 * sy * ny) > 1e-12)
        accumulate(map, key, core::MYY, scaled(2.0 * sy * ny));
      accumulate(map, key, core::MXY, scaled(sx * ny + sy * nx));
    }
  }
  return drain(std::move(map));
}

double totalMoment(const std::vector<core::MomentRateSource>& sources,
                   double dt) {
  double m0 = 0.0;
  for (const auto& s : sources) {
    double frob = 0.0;
    const double weights[6] = {1.0, 1.0, 1.0, 2.0, 2.0, 2.0};
    for (int c = 0; c < 6; ++c) {
      const double m = s.momentOf(c, dt);
      frob += weights[c] * m * m;
    }
    m0 += std::sqrt(0.5 * frob);
  }
  return m0;
}

}  // namespace awp::source
