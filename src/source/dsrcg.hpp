#pragma once
// dSrcG: the source generator (§III.D, §VII.B). Two paths, matching the
// paper's kinematic vs dynamic source comparison (TeraShake-K vs -D, Fig
// 16):
//
//  * fromRupture — the M8 two-step method: take the dynamic rupture
//    solver's slip-rate histories, apply temporal interpolation plus a
//    4th-order low-pass filter, and insert the result as moment-rate
//    point sources along a segmented approximation of the fault trace in
//    the wave-propagation model.
//
//  * kinematic — a smooth Haskell-type kinematic description (the TS-K
//    style source: constant rupture speed, prescribed rise time, tapered
//    slip), which is what "kinematic source descriptions ... usually not
//    constrained by physical properties of faults" means in §VI.

#include <vector>

#include "core/source.hpp"
#include "rupture/solver.hpp"
#include "source/trace.hpp"

namespace awp::source {

struct WaveModelTarget {
  grid::GridDims dims;  // wave model grid
  double h = 100.0;     // wave model spacing [m]
  double dt = 0.01;     // wave solver time step [s]
};

struct FilterConfig {
  double cutoffHz = 2.0;  // M8: 4th-order low-pass at 2 Hz (§VII.B)
  int order = 4;
};

// --- Dynamic path ----------------------------------------------------------
// Map a gathered FaultHistory onto `trace`, producing one moment-rate
// source per fault node (nodes landing on the same wave cell accumulate).
std::vector<core::MomentRateSource> fromRupture(
    const rupture::FaultHistory& fault, const FaultTrace& trace,
    const WaveModelTarget& target, const FilterConfig& filter);

// --- Kinematic path --------------------------------------------------------
struct KinematicScenario {
  double faultLength = 200e3;  // m along the trace
  double faultDepth = 16e3;    // m
  double subfaultSpacing = 0.0;  // 0 = wave grid spacing
  double targetMw = 7.7;
  double ruptureSpeed = 2800.0;  // m/s, constant (the TS-K simplification)
  double riseTime = 2.0;         // s
  double rigidity = 3.0e10;      // Pa
  bool reverseDirection = false;  // rupture from the far end (TS-K NW-SE)
  double hypocenterAlongStrike = 0.0;  // m from the trace start
};

std::vector<core::MomentRateSource> kinematicSource(
    const KinematicScenario& scenario, const FaultTrace& trace,
    const WaveModelTarget& target);

// Total scalar moment of a source set (from the strike/dip components).
double totalMoment(const std::vector<core::MomentRateSource>& sources,
                   double dt);

}  // namespace awp::source
