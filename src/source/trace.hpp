#pragma once
// Fault-trace geometry for the wave-propagation model. The M8 two-step
// method transfers the planar-fault rupture onto "a 47-segment
// approximation of the southern SAF" (§VII.B); this models such a
// segmented polyline and maps along-strike distance to surface positions
// and local strike directions.

#include <cstddef>
#include <vector>

namespace awp::source {

struct TracePoint {
  double x = 0.0, y = 0.0;  // meters in the wave model
};

class FaultTrace {
 public:
  explicit FaultTrace(std::vector<TracePoint> vertices);

  // A straight trace along x at constant y.
  static FaultTrace straight(double x0, double x1, double y);
  // An n-segment approximation of a gently bent SAF-like trace running
  // from (x0, y0) to (x1, y1) with a "Big Bend"-style kink amplitude.
  static FaultTrace bent(double x0, double y0, double x1, double y1,
                         std::size_t segments, double bendAmplitude);

  [[nodiscard]] double length() const { return length_; }
  [[nodiscard]] std::size_t segmentCount() const {
    return vertices_.size() - 1;
  }

  struct Sample {
    TracePoint position;
    double strikeX = 1.0, strikeY = 0.0;  // unit strike direction
    double normalX = 0.0, normalY = 1.0;  // unit in-plane normal
  };
  // Sample at along-trace arclength s (clamped to [0, length]).
  [[nodiscard]] Sample at(double s) const;

 private:
  std::vector<TracePoint> vertices_;
  std::vector<double> cumLength_;
  double length_ = 0.0;
};

}  // namespace awp::source
