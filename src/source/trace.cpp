#include "source/trace.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace awp::source {

FaultTrace::FaultTrace(std::vector<TracePoint> vertices)
    : vertices_(std::move(vertices)) {
  AWP_CHECK_MSG(vertices_.size() >= 2, "trace needs at least two vertices");
  cumLength_.resize(vertices_.size(), 0.0);
  for (std::size_t i = 1; i < vertices_.size(); ++i) {
    const double dx = vertices_[i].x - vertices_[i - 1].x;
    const double dy = vertices_[i].y - vertices_[i - 1].y;
    cumLength_[i] = cumLength_[i - 1] + std::hypot(dx, dy);
  }
  length_ = cumLength_.back();
  AWP_CHECK(length_ > 0.0);
}

FaultTrace FaultTrace::straight(double x0, double x1, double y) {
  return FaultTrace({{x0, y}, {x1, y}});
}

FaultTrace FaultTrace::bent(double x0, double y0, double x1, double y1,
                            std::size_t segments, double bendAmplitude) {
  AWP_CHECK(segments >= 1);
  std::vector<TracePoint> v;
  v.reserve(segments + 1);
  for (std::size_t s = 0; s <= segments; ++s) {
    const double f = static_cast<double>(s) / segments;
    // A smooth bow with the largest deviation mid-trace (Big Bend analog).
    const double bow = bendAmplitude * std::sin(M_PI * f);
    v.push_back({x0 + f * (x1 - x0), y0 + f * (y1 - y0) + bow});
  }
  return FaultTrace(std::move(v));
}

FaultTrace::Sample FaultTrace::at(double s) const {
  s = std::clamp(s, 0.0, length_);
  // Find the segment containing arclength s.
  std::size_t seg = 1;
  while (seg + 1 < cumLength_.size() && cumLength_[seg] < s) ++seg;
  const double segLen = cumLength_[seg] - cumLength_[seg - 1];
  const double f = segLen > 0.0 ? (s - cumLength_[seg - 1]) / segLen : 0.0;

  Sample out;
  const TracePoint& a = vertices_[seg - 1];
  const TracePoint& b = vertices_[seg];
  out.position = {a.x + f * (b.x - a.x), a.y + f * (b.y - a.y)};
  const double dx = b.x - a.x, dy = b.y - a.y;
  const double len = std::hypot(dx, dy);
  out.strikeX = dx / len;
  out.strikeY = dy / len;
  out.normalX = -out.strikeY;
  out.normalY = out.strikeX;
  return out;
}

}  // namespace awp::source
