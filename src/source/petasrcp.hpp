#pragma once
// PetaSrcP: the source partitioner (§III.D). Sources are "highly
// clustered, and tens of thousands of sources can be concentrated in a
// given grid area, resulting in hundreds of gigabytes of source data
// assigned to a single core. To fit the large data into the processor
// memory, we further decompose the spatially partitioned source files by
// time. The scheme with both temporal and spatial locality significantly
// reduces the system memory requirements."
//
// Layout: one file per (rank, time segment): <dir>/src_rank<r>_seg<s>.bin,
// holding only the sources inside rank r's subdomain and only the moment-
// rate samples of segment s. M8 split its 2.1 TB source into 36 temporal
// segments of 3000 steps each.

#include <string>
#include <vector>

#include "core/source.hpp"
#include "mesh/partitioner.hpp"
#include "vcluster/cart.hpp"

namespace awp::source {

struct SourcePartitionInfo {
  int ranks = 0;
  int segments = 0;
  std::size_t stepsPerSegment = 0;
  std::size_t totalSteps = 0;
  // Peak bytes any (rank, segment) file occupies — the memory high-water
  // mark the temporal split is designed to lower.
  std::uint64_t maxFileBytes = 0;
  std::uint64_t totalBytes = 0;
};

// Partition `sources` spatially by the topology over `globalDims` and
// temporally into segments of `stepsPerSegment` samples; write the files
// under `dir`. Returns the partition summary.
SourcePartitionInfo partitionSources(
    const std::vector<core::MomentRateSource>& sources,
    const vcluster::CartTopology& topo, const grid::GridDims& globalDims,
    std::size_t stepsPerSegment, const std::string& dir);

// Load one rank's sources for one temporal segment. The returned sources
// carry the segment's samples at their absolute position (leading samples
// before the segment are zero-filled), so they can be injected with the
// solver's global step index.
std::vector<core::MomentRateSource> loadSegment(const std::string& dir,
                                                int rank, int segment);

// Read the partition info written alongside the files.
SourcePartitionInfo readPartitionInfo(const std::string& dir);

}  // namespace awp::source
