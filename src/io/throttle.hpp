#pragma once
// Concurrent-open throttle. At large core counts per-process file I/O is
// "hindered by the collection of metadata operations or file system
// contention"; AWP-ODC constrains "the number of synchronously opened
// files to control the number of concurrent requests hitting the metadata
// servers" (§IV.E) — for M8, at most 650 simultaneous opens against
// Jaguar's 670 OSTs. This class is that limiter for the virtual cluster.

#include <condition_variable>
#include <mutex>

#include "util/guarded.hpp"

namespace awp::io {

class OpenThrottle {
 public:
  explicit OpenThrottle(int maxConcurrent);

  void acquire();
  void release();

  // Peak concurrency observed (for tests: must never exceed the limit).
  [[nodiscard]] int peakConcurrent() const;
  [[nodiscard]] int limit() const { return limit_; }

  // RAII ticket.
  class Ticket {
   public:
    explicit Ticket(OpenThrottle& t) : throttle_(&t) { throttle_->acquire(); }
    ~Ticket() {
      if (throttle_ != nullptr) throttle_->release();
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

   private:
    OpenThrottle* throttle_;
  };

 private:
  const int limit_;
  int active_ AWP_GUARDED_BY(mutex_) = 0;
  int peak_ AWP_GUARDED_BY(mutex_) = 0;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace awp::io
