#pragma once
// Positional-I/O file wrapper. This is the MPI-IO substitute: all ranks of
// a virtual cluster may hold a SharedFile on the same path and perform
// reads/writes at explicit displacements, which is exactly how AWP-ODC
// drives MPI-IO ("instead of using individual file handles and associated
// offsets, we use explicit displacements to perform data accesses at the
// specific locations for all the participating processors", §III.E).

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "util/retry.hpp"

namespace awp::io {

class SharedFile {
 public:
  enum class Mode { Read, Write, ReadWrite };

  SharedFile() = default;
  SharedFile(const std::string& path, Mode mode);
  ~SharedFile();

  SharedFile(SharedFile&& other) noexcept;
  SharedFile& operator=(SharedFile&& other) noexcept;
  SharedFile(const SharedFile&) = delete;
  SharedFile& operator=(const SharedFile&) = delete;

  void open(const std::string& path, Mode mode);
  void close();
  [[nodiscard]] bool isOpen() const { return fd_ >= 0; }

  // Thread-safe positional access (pread/pwrite); full-length transfers or
  // awp::Error. Both ops carry fault-injection hooks ("sharedfile.read" /
  // "sharedfile.write"); injected transient faults are retried through the
  // shared util/retry.hpp policy before an error escapes.
  void readAt(std::uint64_t offset, std::span<std::byte> out) const;
  void writeAt(std::uint64_t offset, std::span<const std::byte> data);

  // Policy for transient-fault retries on this file's positional ops.
  void setRetryPolicy(const util::RetryPolicy& policy) {
    retryPolicy_ = policy;
  }
  [[nodiscard]] const util::RetryPolicy& retryPolicy() const {
    return retryPolicy_;
  }

  // fsync to stable storage (checkpoints sync before the atomic rename).
  void sync();

  template <typename T>
  void readAt(std::uint64_t offset, std::span<T> out) const {
    readAt(offset, std::as_writable_bytes(out));
  }
  template <typename T>
  void writeAt(std::uint64_t offset, std::span<const T> data) {
    writeAt(offset, std::as_bytes(data));
  }

  [[nodiscard]] std::uint64_t size() const;
  [[nodiscard]] const std::string& path() const { return path_; }

  // Pre-size the file (used before concurrent strided writes).
  void truncate(std::uint64_t size);

 private:
  void readAtRaw(std::uint64_t offset, std::span<std::byte> out) const;
  void writeAtRaw(std::uint64_t offset, std::span<const std::byte> data);

  int fd_ = -1;
  std::string path_;
  util::RetryPolicy retryPolicy_{.maxAttempts = 4};
};

// Convenience whole-file helpers.
void writeFile(const std::string& path, std::span<const std::byte> data);
std::string readTextFile(const std::string& path);

}  // namespace awp::io
