#pragma once
// Parallel MD5 checksumming: "we generate MD5 checksums in parallel at each
// processor for each mesh sub-array. The parallelized MD5 approach
// substantially decreases the time needed to generate the checksums for
// several terabytes of data" (§III.E). Each rank hashes its own block; the
// collection digest is the MD5 of the rank digests in rank order, so it is
// deterministic and independent of arrival order.

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "vcluster/comm.hpp"

namespace awp::io {

struct ChecksumResult {
  std::array<std::uint8_t, 16> rankDigest{};      // this rank's block digest
  std::array<std::uint8_t, 16> collectionDigest{};  // valid on every rank
  std::string collectionHex;
};

// Collective: every rank passes its block; all ranks return the combined
// collection digest.
ChecksumResult parallelMd5(vcluster::Communicator& comm,
                           std::span<const std::byte> block);

}  // namespace awp::io
