#include "io/shared_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace awp::io {

namespace {
[[noreturn]] void throwErrno(const std::string& what, const std::string& path) {
  throw Error(what + " '" + path + "': " + std::strerror(errno));
}
}  // namespace

SharedFile::SharedFile(const std::string& path, Mode mode) {
  open(path, mode);
}

SharedFile::~SharedFile() { close(); }

SharedFile::SharedFile(SharedFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

SharedFile& SharedFile::operator=(SharedFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

void SharedFile::open(const std::string& path, Mode mode) {
  close();
  int flags = 0;
  switch (mode) {
    case Mode::Read:
      flags = O_RDONLY;
      break;
    case Mode::Write:
      flags = O_RDWR | O_CREAT;
      break;
    case Mode::ReadWrite:
      flags = O_RDWR | O_CREAT;
      break;
  }
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) throwErrno("cannot open", path);
  path_ = path;
}

void SharedFile::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void SharedFile::readAt(std::uint64_t offset, std::span<std::byte> out) const {
  AWP_CHECK(isOpen());
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throwErrno("pread failed on", path_);
    }
    if (n == 0)
      throw Error("short read (EOF) on '" + path_ + "'");
    done += static_cast<std::size_t>(n);
  }
}

void SharedFile::writeAt(std::uint64_t offset,
                         std::span<const std::byte> data) {
  AWP_CHECK(isOpen());
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throwErrno("pwrite failed on", path_);
    }
    done += static_cast<std::size_t>(n);
  }
}

std::uint64_t SharedFile::size() const {
  AWP_CHECK(isOpen());
  struct stat st{};
  if (::fstat(fd_, &st) != 0) throwErrno("fstat failed on", path_);
  return static_cast<std::uint64_t>(st.st_size);
}

void SharedFile::truncate(std::uint64_t size) {
  AWP_CHECK(isOpen());
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0)
    throwErrno("ftruncate failed on", path_);
}

void writeFile(const std::string& path, std::span<const std::byte> data) {
  SharedFile f(path, SharedFile::Mode::Write);
  f.truncate(0);
  f.writeAt(0, data);
}

std::string readTextFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace awp::io
