#include "io/shared_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "fault/injector.hpp"
#include "util/error.hpp"

namespace awp::io {

namespace {
[[noreturn]] void throwErrno(const std::string& what, const std::string& path) {
  throw Error(what + " '" + path + "': " + std::strerror(errno));
}

void flipBit(std::span<std::byte> data, std::uint64_t bit) {
  if (data.empty()) return;
  const std::uint64_t b = bit % (data.size() * 8);
  data[b / 8] ^= static_cast<std::byte>(1u << (b % 8));
}
}  // namespace

SharedFile::SharedFile(const std::string& path, Mode mode) {
  open(path, mode);
}

SharedFile::~SharedFile() { close(); }

SharedFile::SharedFile(SharedFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

SharedFile& SharedFile::operator=(SharedFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

void SharedFile::open(const std::string& path, Mode mode) {
  close();
  int flags = 0;
  switch (mode) {
    case Mode::Read:
      flags = O_RDONLY;
      break;
    case Mode::Write:
      flags = O_RDWR | O_CREAT;
      break;
    case Mode::ReadWrite:
      flags = O_RDWR | O_CREAT;
      break;
  }
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) throwErrno("cannot open", path);
  path_ = path;
}

void SharedFile::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void SharedFile::readAtRaw(std::uint64_t offset,
                           std::span<std::byte> out) const {
  AWP_CHECK(isOpen());
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throwErrno("pread failed on", path_);
    }
    if (n == 0)
      throw Error("short read (EOF) on '" + path_ + "'");
    done += static_cast<std::size_t>(n);
  }
}

void SharedFile::writeAtRaw(std::uint64_t offset,
                            std::span<const std::byte> data) {
  AWP_CHECK(isOpen());
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throwErrno("pwrite failed on", path_);
    }
    done += static_cast<std::size_t>(n);
  }
}

void SharedFile::readAt(std::uint64_t offset, std::span<std::byte> out) const {
  if (!fault::injectionEnabled()) {  // fast path: one load + branch
    readAtRaw(offset, out);
    return;
  }
  util::retryCall(retryPolicy_, "sharedfile.read", [&] {
    if (auto act = fault::activeInjector()->check("sharedfile.read",
                                                  fault::threadRank())) {
      switch (act->kind) {
        case fault::FaultKind::TransientIoError:
        case fault::FaultKind::ShortWrite:
          throw TransientError("injected transient read error on '" + path_ +
                               "'");
        case fault::FaultKind::NoSpace:
          throw Error("injected I/O error reading '" + path_ + "'");
        case fault::FaultKind::BitFlip:
          readAtRaw(offset, out);
          flipBit(out, act->flipBit);
          return;
        case fault::FaultKind::RankStall:
          std::this_thread::sleep_for(
              std::chrono::duration<double>(act->stallSeconds));
          break;
        default:
          break;  // message-level kinds do not apply to file reads
      }
    }
    readAtRaw(offset, out);
  });
}

void SharedFile::writeAt(std::uint64_t offset,
                         std::span<const std::byte> data) {
  if (!fault::injectionEnabled()) {  // fast path: one load + branch
    writeAtRaw(offset, data);
    return;
  }
  util::retryCall(retryPolicy_, "sharedfile.write", [&] {
    if (auto act = fault::activeInjector()->check("sharedfile.write",
                                                  fault::threadRank())) {
      switch (act->kind) {
        case fault::FaultKind::TransientIoError:
          throw TransientError("injected transient write error on '" + path_ +
                               "'");
        case fault::FaultKind::ShortWrite:
          // Torn write: a prefix lands on disk, then the op "fails". A
          // retry rewrites the full span; exhausted retries leave the tear.
          writeAtRaw(offset, data.first(data.size() / 2));
          throw TransientError("injected short write on '" + path_ + "'");
        case fault::FaultKind::NoSpace:
          throw Error("injected ENOSPC writing '" + path_ + "'");
        case fault::FaultKind::BitFlip: {
          std::vector<std::byte> corrupted(data.begin(), data.end());
          flipBit(corrupted, act->flipBit);
          writeAtRaw(offset, corrupted);
          return;
        }
        case fault::FaultKind::RankStall:
          std::this_thread::sleep_for(
              std::chrono::duration<double>(act->stallSeconds));
          break;
        default:
          break;  // message-level kinds do not apply to file writes
      }
    }
    writeAtRaw(offset, data);
  });
}

void SharedFile::sync() {
  AWP_CHECK(isOpen());
  if (::fsync(fd_) != 0) throwErrno("fsync failed on", path_);
}

std::uint64_t SharedFile::size() const {
  AWP_CHECK(isOpen());
  struct stat st{};
  if (::fstat(fd_, &st) != 0) throwErrno("fstat failed on", path_);
  return static_cast<std::uint64_t>(st.st_size);
}

void SharedFile::truncate(std::uint64_t size) {
  AWP_CHECK(isOpen());
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0)
    throwErrno("ftruncate failed on", path_);
}

void writeFile(const std::string& path, std::span<const std::byte> data) {
  SharedFile f(path, SharedFile::Mode::Write);
  f.truncate(0);
  f.writeAt(0, data);
}

std::string readTextFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace awp::io
