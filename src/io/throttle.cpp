#include "io/throttle.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace awp::io {

OpenThrottle::OpenThrottle(int maxConcurrent) : limit_(maxConcurrent) {
  AWP_CHECK(maxConcurrent > 0);
}

void OpenThrottle::acquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return active_ < limit_; });
  ++active_;
  peak_ = std::max(peak_, active_);
}

void OpenThrottle::release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --active_;
  }
  cv_.notify_one();
}

int OpenThrottle::peakConcurrent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_;
}

}  // namespace awp::io
