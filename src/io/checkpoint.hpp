#pragma once
// Application-level checkpoint/restart (§III.F): "All simulation states
// consisting of all the internal state variables on each processor are
// periodically saved into reliable storage where each processor is
// responsible for writing and updating its own checkpoint data."
//
// Resilient layout: two generations per rank, <dir>/ckpt_rank<r>_g<0|1>.bin,
// each holding a header (magic, step, payload size, MD5 of payload) followed
// by the raw state blob. Writes go to "<final>.tmp" and are renamed into
// the older generation slot only after an fsync, so a crash mid-write can
// never destroy the previous good checkpoint. Reads verify the digest and
// fall back from a torn/corrupt newest generation to the previous one.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "io/throttle.hpp"

namespace awp::io {

class CheckpointStore {
 public:
  static constexpr int kGenerations = 2;

  // `throttle` may be null (no concurrent-open limiting); when set, writes
  // and reads take a throttle ticket, matching the §IV.E scheme that was
  // "also applied to the checkpointing scheme".
  CheckpointStore(std::string directory, OpenThrottle* throttle = nullptr);

  // Atomic generational write (tmp + fsync + rename onto the older slot).
  // Fault-injection site "ckpt.payload" can bit-flip the payload as
  // written, producing a checkpoint whose stored digest will not verify.
  void write(int rank, std::uint64_t step, std::span<const std::byte> state);

  struct Restored {
    std::uint64_t step = 0;
    std::vector<std::byte> state;
  };
  // Newest generation whose payload digest verifies; falls back to the
  // previous generation on a torn header or digest mismatch. Throws
  // awp::Error when no generation is valid.
  Restored read(int rank) const;
  // Exact-step read, used by the collective restart agreement: every rank
  // loads the newest step that is valid on *all* ranks.
  Restored readStep(int rank, std::uint64_t step) const;
  // Step of the newest digest-valid generation; nullopt when none is.
  [[nodiscard]] std::optional<std::uint64_t> newestValidStep(int rank) const;
  // Steps of ALL digest-valid generations, newest first — the health
  // guard's rollback diagnostics list what a retry could restore.
  [[nodiscard]] std::vector<std::uint64_t> validSteps(int rank) const;

  // Cache-tier handoff (hazard fabric): copy every digest-valid generation
  // of `other` for `rank` into this store via verified reads and atomic
  // generational writes — a torn or corrupt source generation is skipped,
  // never propagated, and the full candidate set moves so the collective
  // restart agreement (allreduce-Min of the ranks' newest steps) can still
  // be satisfied by a rank whose newest generation is ahead of the agreed
  // step. Returns the newest adopted step, or nullopt when `other` holds
  // no valid generation for the rank. Used when a scenario's ownership
  // moves brokers: the new owner seeds its private checkpoint dir from the
  // lost owner's tier, then resumes bit-identically.
  std::optional<std::uint64_t> adoptNewestFrom(const CheckpointStore& other,
                                               int rank);

  // Any generation file present (valid or not).
  [[nodiscard]] bool exists(int rank) const;
  // Path of the most recently written generation (by header step).
  [[nodiscard]] std::string pathFor(int rank) const;
  [[nodiscard]] std::string pathFor(int rank, int generation) const;

 private:
  Restored loadSlot(int rank, int slot) const;

  std::string directory_;
  OpenThrottle* throttle_;
};

}  // namespace awp::io
