#pragma once
// Application-level checkpoint/restart (§III.F): "All simulation states
// consisting of all the internal state variables on each processor are
// periodically saved into reliable storage where each processor is
// responsible for writing and updating its own checkpoint data."
//
// Layout: one file per rank, <dir>/ckpt_rank<r>.bin, containing a header
// (magic, step, payload size, MD5 of payload) followed by the raw state
// blob. Restart verifies the digest before handing the state back.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "io/throttle.hpp"

namespace awp::io {

class CheckpointStore {
 public:
  // `throttle` may be null (no concurrent-open limiting); when set, writes
  // and reads take a throttle ticket, matching the §IV.E scheme that was
  // "also applied to the checkpointing scheme".
  CheckpointStore(std::string directory, OpenThrottle* throttle = nullptr);

  void write(int rank, std::uint64_t step, std::span<const std::byte> state);

  struct Restored {
    std::uint64_t step = 0;
    std::vector<std::byte> state;
  };
  // Throws awp::Error on missing file or digest mismatch (torn checkpoint).
  Restored read(int rank) const;

  [[nodiscard]] bool exists(int rank) const;
  [[nodiscard]] std::string pathFor(int rank) const;

 private:
  std::string directory_;
  OpenThrottle* throttle_;
};

}  // namespace awp::io
