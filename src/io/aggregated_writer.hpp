#pragma once
// Output aggregation. AWP-ODC buffers velocity output in memory and flushes
// every flushInterval time steps ("the required velocity results are
// aggregated in memory buffers as much as possible before being flushed",
// §III.E; M8 wrote every 20,000 steps). Aggregation is what reduced the
// I/O overhead from 49% to under 2% of wall-clock time.
//
// Each rank owns one AggregatedWriter targeting a shared output file; the
// writer computes explicit displacements from (step, rank block) exactly as
// the MPI-IO file views do in the paper.
//
// Samples are addressed by a caller-supplied step-derived index, which
// makes the sink idempotent under rollback replay: a re-executed window
// overwrites the records it wrote the first time (in the buffer when still
// aggregated, positionally in the file when already flushed) instead of
// appending duplicates.

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "io/shared_file.hpp"
#include "util/retry.hpp"

namespace awp::io {

// Sentinel for "no sample was rewritten below the flushed prefix since the
// last flush notification".
inline constexpr std::uint64_t kNoRewrite =
    std::numeric_limits<std::uint64_t>::max();

// Invoked after each flush that advances (or re-establishes) the durable
// prefix: `durableSamples` is the new flushed-sample count;
// `lowestRewritten` is the smallest already-flushed sample index rewritten
// in place since the previous notification (kNoRewrite when none). The
// serving tier uses the pair to fold freshly durable samples into partial
// hazard products and to detect rollback replays that invalidate
// previously folded windows.
using FlushObserver =
    std::function<void(std::uint64_t durableSamples,
                       std::uint64_t lowestRewritten)>;

struct WriterStats {
  std::uint64_t recordsBuffered = 0;
  std::uint64_t flushes = 0;
  std::uint64_t bytesWritten = 0;
  std::uint64_t writeAttempts = 0;  // sample writes incl. retries
  std::uint64_t writeRetries = 0;   // failed attempts that were retried
  std::uint64_t samplesRewritten = 0;  // rollback-replay overwrites
  double writeSeconds = 0.0;
};

class AggregatedWriter {
 public:
  // `recordFloats`: number of floats this rank contributes per sampled
  // step; `rankOffsetFloats`: this rank's displacement within one step's
  // global record; `stepFloatsGlobal`: total floats per sampled step over
  // all ranks; `flushEverySamples`: how many sampled steps to aggregate
  // before flushing (1 disables aggregation — the pre-tuning behaviour).
  AggregatedWriter(SharedFile* file, std::size_t recordFloats,
                   std::uint64_t rankOffsetFloats,
                   std::uint64_t stepFloatsGlobal, int flushEverySamples);

  // Append one sampled step worth of data (must be recordFloats long) at
  // the next sample index.
  void appendSample(const float* data, std::size_t count);

  // Write one sample at an explicit step-derived index. Indices at or past
  // the flushed prefix land in (or extend) the aggregation buffer; indices
  // below it — a rollback replay revisiting flushed steps — are rewritten
  // in place at their original displacement.
  void writeSampleAt(std::uint64_t sampleIndex, const float* data,
                     std::size_t count);

  // Flush whatever is buffered. Transient write faults that escape the
  // file's own retries are retried once more per sample at this level, so
  // an aggregation buffer survives a flaky flush without losing samples.
  void flush();

  // Declare indices below `sampleIndex` already persisted — by a previous
  // incarnation of this writer whose checkpoint-resumed run is picking up
  // mid-file. Without this a fresh writer would treat the resume point as
  // a gap and zero-fill the prefix on its first flush, destroying the
  // earlier attempt's samples. Buffered samples are flushed first; the
  // prefix only ever advances.
  void resumeFrom(std::uint64_t sampleIndex);

  void setRetryPolicy(const util::RetryPolicy& policy) {
    retryPolicy_ = policy;
  }

  // Observe durable-prefix advances. Fires on the writer's own thread
  // after flush() persists buffered samples and after resumeFrom() adopts
  // an earlier attempt's prefix; pending rewrite low-water marks ride on
  // the next notification.
  void setFlushObserver(FlushObserver observer) {
    observer_ = std::move(observer);
  }

  [[nodiscard]] const WriterStats& stats() const { return stats_; }
  // Index the next appendSample() would write.
  [[nodiscard]] std::uint64_t nextSampleIndex() const {
    return samplesFlushed_ + samplesBuffered_;
  }

 private:
  // One positional sample write (with retries under fault injection).
  void writeOne(std::uint64_t sampleIndex, const float* src);

  SharedFile* file_;
  std::size_t recordFloats_;
  std::uint64_t rankOffsetFloats_;
  std::uint64_t stepFloatsGlobal_;
  int flushEverySamples_;

  // Notify the observer of the current durable prefix and consume the
  // pending rewrite low-water mark.
  void notifyObserver();

  std::vector<float> buffer_;
  std::uint64_t samplesBuffered_ = 0;
  std::uint64_t samplesFlushed_ = 0;
  std::uint64_t lowestRewritten_ = kNoRewrite;
  util::RetryPolicy retryPolicy_{.maxAttempts = 3};
  FlushObserver observer_;
  WriterStats stats_;
};

}  // namespace awp::io
