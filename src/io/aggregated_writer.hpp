#pragma once
// Output aggregation. AWP-ODC buffers velocity output in memory and flushes
// every flushInterval time steps ("the required velocity results are
// aggregated in memory buffers as much as possible before being flushed",
// §III.E; M8 wrote every 20,000 steps). Aggregation is what reduced the
// I/O overhead from 49% to under 2% of wall-clock time.
//
// Each rank owns one AggregatedWriter targeting a shared output file; the
// writer computes explicit displacements from (step, rank block) exactly as
// the MPI-IO file views do in the paper.

#include <cstdint>
#include <vector>

#include "io/shared_file.hpp"
#include "util/retry.hpp"

namespace awp::io {

struct WriterStats {
  std::uint64_t recordsBuffered = 0;
  std::uint64_t flushes = 0;
  std::uint64_t bytesWritten = 0;
  std::uint64_t writeAttempts = 0;  // sample writes incl. retries
  std::uint64_t writeRetries = 0;   // failed attempts that were retried
  double writeSeconds = 0.0;
};

class AggregatedWriter {
 public:
  // `recordFloats`: number of floats this rank contributes per sampled
  // step; `rankOffsetFloats`: this rank's displacement within one step's
  // global record; `stepFloatsGlobal`: total floats per sampled step over
  // all ranks; `flushEverySamples`: how many sampled steps to aggregate
  // before flushing (1 disables aggregation — the pre-tuning behaviour).
  AggregatedWriter(SharedFile* file, std::size_t recordFloats,
                   std::uint64_t rankOffsetFloats,
                   std::uint64_t stepFloatsGlobal, int flushEverySamples);

  // Append one sampled step worth of data (must be recordFloats long).
  void appendSample(const float* data, std::size_t count);

  // Flush whatever is buffered. Transient write faults that escape the
  // file's own retries are retried once more per sample at this level, so
  // an aggregation buffer survives a flaky flush without losing samples.
  void flush();

  void setRetryPolicy(const util::RetryPolicy& policy) {
    retryPolicy_ = policy;
  }

  [[nodiscard]] const WriterStats& stats() const { return stats_; }

 private:
  SharedFile* file_;
  std::size_t recordFloats_;
  std::uint64_t rankOffsetFloats_;
  std::uint64_t stepFloatsGlobal_;
  int flushEverySamples_;

  std::vector<float> buffer_;
  std::uint64_t samplesBuffered_ = 0;
  std::uint64_t samplesFlushed_ = 0;
  util::RetryPolicy retryPolicy_{.maxAttempts = 3};
  WriterStats stats_;
};

}  // namespace awp::io
