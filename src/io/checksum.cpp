#include "io/checksum.hpp"

#include "util/md5.hpp"

namespace awp::io {

ChecksumResult parallelMd5(vcluster::Communicator& comm,
                           std::span<const std::byte> block) {
  ChecksumResult result;
  result.rankDigest = Md5::hash(block.data(), block.size());

  const auto digests = comm.gatherBytes(
      0, std::span<const std::byte>(
             reinterpret_cast<const std::byte*>(result.rankDigest.data()),
             result.rankDigest.size()));

  if (comm.rank() == 0) {
    Md5 combined;
    for (const auto& d : digests) combined.update(d.data(), d.size());
    result.collectionDigest = combined.digest();
  }
  comm.bcast(0, result.collectionDigest.data(),
             result.collectionDigest.size());
  result.collectionHex = Md5::toHex(result.collectionDigest);
  return result;
}

}  // namespace awp::io
