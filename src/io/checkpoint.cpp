#include "io/checkpoint.hpp"

#include <sys/stat.h>

#include <cstring>

#include "io/shared_file.hpp"
#include "util/error.hpp"
#include "util/md5.hpp"

namespace awp::io {

namespace {
constexpr std::uint64_t kMagic = 0x4157504f44435031ULL;  // "AWPODCP1"

struct Header {
  std::uint64_t magic;
  std::uint64_t step;
  std::uint64_t payloadBytes;
  std::uint8_t digest[16];
};
}  // namespace

CheckpointStore::CheckpointStore(std::string directory, OpenThrottle* throttle)
    : directory_(std::move(directory)), throttle_(throttle) {
  ::mkdir(directory_.c_str(), 0755);  // ok if it already exists
}

std::string CheckpointStore::pathFor(int rank) const {
  return directory_ + "/ckpt_rank" + std::to_string(rank) + ".bin";
}

bool CheckpointStore::exists(int rank) const {
  struct stat st{};
  return ::stat(pathFor(rank).c_str(), &st) == 0;
}

void CheckpointStore::write(int rank, std::uint64_t step,
                            std::span<const std::byte> state) {
  Header h{};
  h.magic = kMagic;
  h.step = step;
  h.payloadBytes = state.size();
  const auto digest = Md5::hash(state.data(), state.size());
  std::memcpy(h.digest, digest.data(), sizeof(h.digest));

  auto writeBody = [&] {
    SharedFile f(pathFor(rank), SharedFile::Mode::Write);
    f.truncate(0);
    f.writeAt(0, std::span<const std::byte>(
                     reinterpret_cast<const std::byte*>(&h), sizeof(h)));
    f.writeAt(sizeof(h), state);
  };
  if (throttle_ != nullptr) {
    OpenThrottle::Ticket ticket(*throttle_);
    writeBody();
  } else {
    writeBody();
  }
}

CheckpointStore::Restored CheckpointStore::read(int rank) const {
  auto readBody = [&]() -> Restored {
    SharedFile f(pathFor(rank), SharedFile::Mode::Read);
    Header h{};
    f.readAt(0, std::span<std::byte>(reinterpret_cast<std::byte*>(&h),
                                     sizeof(h)));
    AWP_CHECK_MSG(h.magic == kMagic, "bad checkpoint magic");
    Restored r;
    r.step = h.step;
    r.state.resize(h.payloadBytes);
    f.readAt(sizeof(h), std::span<std::byte>(r.state));
    const auto digest = Md5::hash(r.state.data(), r.state.size());
    if (std::memcmp(digest.data(), h.digest, sizeof(h.digest)) != 0)
      throw Error("checkpoint digest mismatch for rank " +
                  std::to_string(rank) + " (torn or corrupted checkpoint)");
    return r;
  };
  if (throttle_ != nullptr) {
    OpenThrottle::Ticket ticket(*throttle_);
    return readBody();
  }
  return readBody();
}

}  // namespace awp::io
