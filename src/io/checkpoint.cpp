#include "io/checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "fault/injector.hpp"
#include "io/shared_file.hpp"
#include "telemetry/registry.hpp"
#include "util/error.hpp"
#include "util/md5.hpp"

namespace awp::io {

namespace {
constexpr std::uint64_t kMagic = 0x4157504f44435032ULL;  // "AWPODCP2"

struct Header {
  std::uint64_t magic;
  std::uint64_t step;
  std::uint64_t payloadBytes;
  std::uint8_t digest[16];
};

// Header-only view of one generation slot. Raw POSIX (no fault hooks, no
// throttle): slot selection must stay cheap and deterministic even while
// faults are being injected into the data path.
struct SlotView {
  bool present = false;
  bool headerOk = false;  // magic matches and the file is not torn short
  std::uint64_t step = 0;
};

SlotView inspectSlot(const std::string& path) {
  SlotView v;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return v;
  v.present = true;
  Header h{};
  const ssize_t n = ::pread(fd, &h, sizeof(h), 0);
  struct stat st{};
  const bool statOk = ::fstat(fd, &st) == 0;
  ::close(fd);
  if (n != static_cast<ssize_t>(sizeof(h)) || !statOk) return v;
  if (h.magic != kMagic) return v;
  if (static_cast<std::uint64_t>(st.st_size) != sizeof(h) + h.payloadBytes)
    return v;
  v.headerOk = true;
  v.step = h.step;
  return v;
}
}  // namespace

CheckpointStore::CheckpointStore(std::string directory, OpenThrottle* throttle)
    : directory_(std::move(directory)), throttle_(throttle) {
  ::mkdir(directory_.c_str(), 0755);  // ok if it already exists
}

std::string CheckpointStore::pathFor(int rank, int generation) const {
  return directory_ + "/ckpt_rank" + std::to_string(rank) + "_g" +
         std::to_string(generation) + ".bin";
}

std::string CheckpointStore::pathFor(int rank) const {
  int best = 0;
  std::uint64_t bestStep = 0;
  bool haveOk = false;
  for (int g = 0; g < kGenerations; ++g) {
    const SlotView v = inspectSlot(pathFor(rank, g));
    if (!v.present) continue;
    if (v.headerOk && (!haveOk || v.step > bestStep)) {
      best = g;
      bestStep = v.step;
      haveOk = true;
    } else if (!haveOk) {
      best = g;
    }
  }
  return pathFor(rank, best);
}

bool CheckpointStore::exists(int rank) const {
  for (int g = 0; g < kGenerations; ++g) {
    struct stat st{};
    if (::stat(pathFor(rank, g).c_str(), &st) == 0) return true;
  }
  return false;
}

void CheckpointStore::write(int rank, std::uint64_t step,
                            std::span<const std::byte> state) {
  telemetry::ScopedSpan span(telemetry::Phase::Checkpoint);
  telemetry::count(telemetry::Counter::CheckpointWrites);
  telemetry::count(telemetry::Counter::CheckpointBytes,
                   sizeof(Header) + state.size());
  Header h{};
  h.magic = kMagic;
  h.step = step;
  h.payloadBytes = state.size();
  const auto digest = Md5::hash(state.data(), state.size());
  std::memcpy(h.digest, digest.data(), sizeof(h.digest));

  // The digest above is of the true state; a "ckpt.payload" bit-flip
  // corrupts the bytes actually written, so the stored digest will not
  // verify on read — the silent-corruption case §III.H guards against.
  std::span<const std::byte> payload = state;
  std::vector<std::byte> corrupted;
  if (fault::injectionEnabled()) {
    if (auto act = fault::activeInjector()->check("ckpt.payload", rank);
        act && act->kind == fault::FaultKind::BitFlip && !state.empty()) {
      corrupted.assign(state.begin(), state.end());
      const std::uint64_t bit = act->flipBit % (corrupted.size() * 8);
      corrupted[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
      payload = corrupted;
    }
  }

  auto writeBody = [&] {
    // Overwrite the slot that does NOT hold the newest intact generation.
    int slot = 0;
    {
      const SlotView s0 = inspectSlot(pathFor(rank, 0));
      const SlotView s1 = inspectSlot(pathFor(rank, 1));
      if (!s0.headerOk)
        slot = 0;
      else if (!s1.headerOk)
        slot = 1;
      else
        slot = s0.step <= s1.step ? 0 : 1;
    }
    const std::string finalPath = pathFor(rank, slot);
    const std::string tmpPath = finalPath + ".tmp";
    {
      SharedFile f(tmpPath, SharedFile::Mode::Write);
      f.truncate(0);
      f.writeAt(0, std::span<const std::byte>(
                       reinterpret_cast<const std::byte*>(&h), sizeof(h)));
      f.writeAt(sizeof(h), payload);
      f.sync();
    }
    if (std::rename(tmpPath.c_str(), finalPath.c_str()) != 0)
      throw Error("cannot rename checkpoint '" + tmpPath + "' -> '" +
                  finalPath + "': " + std::strerror(errno));
  };
  if (throttle_ != nullptr) {
    OpenThrottle::Ticket ticket(*throttle_);
    writeBody();
  } else {
    writeBody();
  }
}

CheckpointStore::Restored CheckpointStore::loadSlot(int rank, int slot) const {
  telemetry::ScopedSpan span(telemetry::Phase::Checkpoint);
  auto readBody = [&]() -> Restored {
    SharedFile f(pathFor(rank, slot), SharedFile::Mode::Read);
    Header h{};
    f.readAt(0, std::span<std::byte>(reinterpret_cast<std::byte*>(&h),
                                     sizeof(h)));
    AWP_CHECK_MSG(h.magic == kMagic, "bad checkpoint magic");
    Restored r;
    r.step = h.step;
    r.state.resize(h.payloadBytes);
    f.readAt(sizeof(h), std::span<std::byte>(r.state));
    const auto digest = Md5::hash(r.state.data(), r.state.size());
    if (std::memcmp(digest.data(), h.digest, sizeof(h.digest)) != 0)
      throw Error("checkpoint digest mismatch for rank " +
                  std::to_string(rank) + " (torn or corrupted checkpoint)");
    return r;
  };
  if (throttle_ != nullptr) {
    OpenThrottle::Ticket ticket(*throttle_);
    return readBody();
  }
  return readBody();
}

CheckpointStore::Restored CheckpointStore::read(int rank) const {
  // Candidate slots with an intact header, newest step first.
  struct Candidate {
    int slot;
    std::uint64_t step;
  };
  std::vector<Candidate> candidates;
  std::string notes;
  for (int g = 0; g < kGenerations; ++g) {
    const SlotView v = inspectSlot(pathFor(rank, g));
    if (!v.present) continue;
    if (!v.headerOk) {
      notes += " [gen " + std::to_string(g) + ": torn header]";
      continue;
    }
    candidates.push_back({g, v.step});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.step > b.step;
            });
  for (const Candidate& c : candidates) {
    try {
      return loadSlot(rank, c.slot);
    } catch (const Error& e) {
      notes += " [gen " + std::to_string(c.slot) + " @ step " +
               std::to_string(c.step) + ": " + e.what() + "]";
    }
  }
  throw Error("no valid checkpoint generation for rank " +
              std::to_string(rank) + notes);
}

std::optional<std::uint64_t> CheckpointStore::newestValidStep(
    int rank) const {
  try {
    return read(rank).step;
  } catch (const Error&) {
    return std::nullopt;
  }
}

std::vector<std::uint64_t> CheckpointStore::validSteps(int rank) const {
  std::vector<std::uint64_t> steps;
  for (int g = 0; g < kGenerations; ++g) {
    const SlotView v = inspectSlot(pathFor(rank, g));
    if (!v.present || !v.headerOk) continue;
    try {
      loadSlot(rank, g);  // digest must verify to count as valid
      steps.push_back(v.step);
    } catch (const Error&) {
    }
  }
  std::sort(steps.rbegin(), steps.rend());
  return steps;
}

CheckpointStore::Restored CheckpointStore::readStep(
    int rank, std::uint64_t step) const {
  for (int g = 0; g < kGenerations; ++g) {
    const SlotView v = inspectSlot(pathFor(rank, g));
    if (!v.present || !v.headerOk || v.step != step) continue;
    return loadSlot(rank, g);  // throws on digest mismatch
  }
  throw Error("rank " + std::to_string(rank) +
              " has no valid checkpoint at agreed step " +
              std::to_string(step));
}

std::optional<std::uint64_t> CheckpointStore::adoptNewestFrom(
    const CheckpointStore& other, int rank) {
  // Adopt EVERY digest-valid generation, oldest first, so the full
  // candidate set survives the move: the collective restart agreement
  // restores the allreduce-Min of the ranks' newest steps, and a rank
  // whose newest generation is ahead of the agreed step must still hold
  // the older one. Copying only the newest would strand such a rank.
  const auto steps = other.validSteps(rank);  // newest first
  std::optional<std::uint64_t> adopted;
  for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
    Restored got;
    try {
      got = other.readStep(rank, *it);
    } catch (const Error&) {
      // The generation decayed between the probe and the read (or its
      // payload digest fails): skip it, never propagate.
      continue;
    }
    write(rank, got.step, std::span<const std::byte>(got.state));
    adopted = got.step;  // newest processed last
  }
  return adopted;
}

}  // namespace awp::io
