#pragma once
// BuddyStore: diskless in-memory checkpoint replication (recovery ladder
// rung 1). At each checkpoint cadence every rank keeps its own serialized
// state blob ("self") and ships a copy to its ring-buddy partner, which
// retains it as a "replica" for the owner. After a rank loss the
// replacement restores the lost rank's state from its buddy's replica
// without touching disk; survivors restore from their self blobs. The
// two-generation on-disk CheckpointStore remains the fallback when the
// in-memory copy is missing (buddy_drop fault, or loss before the first
// buddy exchange).
//
// Only the newest generation is kept per slot: the restore point is agreed
// collectively (allreduce-Min over newest steps), and a rank whose blob is
// newer than the agreed step simply falls back to disk.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "util/guarded.hpp"

namespace awp::io {

class BuddyStore {
 public:
  struct Stats {
    std::uint64_t selfStores = 0;
    std::uint64_t replicaStores = 0;
    std::uint64_t restoresFromSelf = 0;
    std::uint64_t restoresFromReplica = 0;
    std::uint64_t drops = 0;  // replicas lost in flight (buddy_drop site)
  };

  explicit BuddyStore(int nranks);

  // Rank `rank` stores its own blob for `step` (replaces older self blob).
  void storeSelf(int rank, std::uint64_t step, std::span<const std::byte> blob);
  // The ring buddy of `owner` stores owner's replica for `step`.
  void storeReplica(int owner, std::uint64_t step,
                    std::span<const std::byte> blob);
  // A replica was lost in flight (buddy_drop): count it, and invalidate any
  // older replica so a stale generation cannot masquerade as current.
  void noteDrop(int owner);
  // The rank's thread died: its self blob is modelled as lost with it, so
  // a replacement must restore from the ring buddy's replica (or disk).
  // Called by the respawn supervisor's onRespawn hook BEFORE the
  // replacement thread exists.
  void noteDeath(int rank);

  // Newest step with a blob available for `rank` (self or replica);
  // nullopt when the store holds nothing for it.
  [[nodiscard]] std::optional<std::uint64_t> newestStep(int rank) const;

  // Restore rank's state at exactly `step`: self blob preferred (survivor
  // path), buddy replica otherwise (replacement path). nullopt when neither
  // matches — caller falls back to the on-disk store.
  [[nodiscard]] std::optional<std::vector<std::byte>> restore(
      int rank, std::uint64_t step);

  // Forget everything (a requeued attempt must not resurrect blobs from a
  // previous attempt's timeline).
  void clear();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] int size() const {
    // awplint: guard-ok(slots_ is sized once in the ctor, never resized)
    return static_cast<int>(slots_.size());
  }

 private:
  struct Blob {
    std::uint64_t step = 0;
    std::vector<std::byte> bytes;
  };
  struct Slot {
    std::optional<Blob> self;     // this rank's own newest blob
    std::optional<Blob> replica;  // newest blob replicated FOR this owner
  };

  mutable std::mutex mu_;
  std::vector<Slot> slots_ AWP_GUARDED_BY(mu_);  // indexed by owner rank
  Stats stats_ AWP_GUARDED_BY(mu_);
};

}  // namespace awp::io
