#pragma once
// File-system contention model for petascale projections. Captures the two
// effects §III.C/§IV.E describe: (1) aggregate bandwidth grows with the
// number of concurrent writers until the available OSTs saturate, and
// (2) metadata-server load degrades throughput once concurrent opens exceed
// what the MDS tolerates (the BG/P pre-partitioned read "failed at more
// than 100K cores"; Jaguar ran best with <=650 concurrent opens against
// 670 OSTs, reaching 20 GB/s).

#include <cstdint>
#include <string>

namespace awp::io {

struct FileSystemModel {
  std::string name;
  int osts = 670;                   // object storage targets
  double perOstBandwidth = 33e6;    // B/s sustained per OST
  double perClientBandwidth = 250e6;  // B/s one client can drive
  int mdsComfortLimit = 650;        // concurrent opens before MDS degrades
  double mdsPenaltyExponent = 1.2;  // super-linear degradation beyond limit

  // Jaguar's Lustre scratch (spider), calibrated so ~650 writers reach the
  // paper's ~20 GB/s aggregate.
  static FileSystemModel jaguarLustre();
  // A GPFS-like system with stronger MDS tolerance but fewer OSTs.
  static FileSystemModel gpfsLike();

  // Modeled aggregate throughput [B/s] with `writers` concurrent clients.
  [[nodiscard]] double aggregateBandwidth(int writers) const;

  // Best writer count (peak of the curve) within [1, maxWriters].
  [[nodiscard]] int bestWriterCount(int maxWriters) const;
};

// Striping configuration, mirroring the `lfs setstripe` policy of §IV.E:
// different file classes get different stripe settings.
enum class FileClass {
  LargeSharedInput,   // mesh & source: stripe wide for concurrent MPI-IO
  PrePartitioned,     // per-rank inputs & checkpoints: stripe count 1
  SimulationOutput,   // aggregated outputs: large stripe count
};

struct StripeConfig {
  int stripeCount = 1;
  std::int64_t stripeSizeBytes = 1 << 20;
};

StripeConfig stripePolicy(FileClass cls, const FileSystemModel& fs);

}  // namespace awp::io
