#include "io/aggregated_writer.hpp"

#include "fault/injector.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace awp::io {

AggregatedWriter::AggregatedWriter(SharedFile* file, std::size_t recordFloats,
                                   std::uint64_t rankOffsetFloats,
                                   std::uint64_t stepFloatsGlobal,
                                   int flushEverySamples)
    : file_(file),
      recordFloats_(recordFloats),
      rankOffsetFloats_(rankOffsetFloats),
      stepFloatsGlobal_(stepFloatsGlobal),
      flushEverySamples_(flushEverySamples) {
  AWP_CHECK(file_ != nullptr);
  AWP_CHECK(flushEverySamples_ >= 1);
  AWP_CHECK(rankOffsetFloats_ + recordFloats_ <= stepFloatsGlobal_);
  buffer_.reserve(recordFloats_ *
                  static_cast<std::size_t>(flushEverySamples_));
}

void AggregatedWriter::appendSample(const float* data, std::size_t count) {
  AWP_CHECK_MSG(count == recordFloats_, "sample size mismatch");
  buffer_.insert(buffer_.end(), data, data + count);
  ++samplesBuffered_;
  stats_.recordsBuffered += count;
  if (samplesBuffered_ >= static_cast<std::uint64_t>(flushEverySamples_))
    flush();
}

void AggregatedWriter::flush() {
  if (samplesBuffered_ == 0) return;
  Stopwatch watch;
  // The file is laid out step-major: sample s occupies the float range
  // [s * stepFloatsGlobal, (s+1) * stepFloatsGlobal). Each buffered sample
  // is written at its own displacement (one pwrite per sample — the
  // aggregation savings come from batching the *flushes*, not from
  // coalescing across steps, matching the paper's buffer-then-flush).
  for (std::uint64_t s = 0; s < samplesBuffered_; ++s) {
    const std::uint64_t sampleIndex = samplesFlushed_ + s;
    const std::uint64_t offsetBytes =
        (sampleIndex * stepFloatsGlobal_ + rankOffsetFloats_) * sizeof(float);
    const float* src = buffer_.data() + s * recordFloats_;
    if (!fault::injectionEnabled()) {
      file_->writeAt(offsetBytes, std::span<const float>(src, recordFloats_));
      ++stats_.writeAttempts;
      continue;
    }
    util::RetryStats rs;
    util::retryCall(
        retryPolicy_, "aggwriter.flush",
        [&] {
          file_->writeAt(offsetBytes,
                         std::span<const float>(src, recordFloats_));
        },
        &rs);
    stats_.writeAttempts += static_cast<std::uint64_t>(rs.attempts);
    stats_.writeRetries += static_cast<std::uint64_t>(rs.failures);
  }
  samplesFlushed_ += samplesBuffered_;
  stats_.bytesWritten +=
      samplesBuffered_ * recordFloats_ * sizeof(float);
  ++stats_.flushes;
  stats_.writeSeconds += watch.seconds();
  samplesBuffered_ = 0;
  buffer_.clear();
}

}  // namespace awp::io
