#include "io/aggregated_writer.hpp"

#include <cstring>

#include "fault/injector.hpp"
#include "telemetry/registry.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace awp::io {

AggregatedWriter::AggregatedWriter(SharedFile* file, std::size_t recordFloats,
                                   std::uint64_t rankOffsetFloats,
                                   std::uint64_t stepFloatsGlobal,
                                   int flushEverySamples)
    : file_(file),
      recordFloats_(recordFloats),
      rankOffsetFloats_(rankOffsetFloats),
      stepFloatsGlobal_(stepFloatsGlobal),
      flushEverySamples_(flushEverySamples) {
  AWP_CHECK(file_ != nullptr);
  AWP_CHECK(flushEverySamples_ >= 1);
  AWP_CHECK(rankOffsetFloats_ + recordFloats_ <= stepFloatsGlobal_);
  buffer_.reserve(recordFloats_ *
                  static_cast<std::size_t>(flushEverySamples_));
}

void AggregatedWriter::appendSample(const float* data, std::size_t count) {
  writeSampleAt(nextSampleIndex(), data, count);
}

void AggregatedWriter::writeSampleAt(std::uint64_t sampleIndex,
                                     const float* data, std::size_t count) {
  AWP_CHECK_MSG(count == recordFloats_, "sample size mismatch");

  if (sampleIndex < samplesFlushed_) {
    // Rollback replay revisiting an already-flushed sample: rewrite it in
    // place at its original displacement. No buffering — the replayed
    // value must not also land at a fresh index.
    telemetry::ScopedSpan span(telemetry::Phase::Output);
    Stopwatch watch;
    writeOne(sampleIndex, data);
    stats_.bytesWritten += recordFloats_ * sizeof(float);
    ++stats_.samplesRewritten;
    if (sampleIndex < lowestRewritten_) lowestRewritten_ = sampleIndex;
    stats_.writeSeconds += watch.seconds();
    telemetry::count(telemetry::Counter::OutputBytes,
                     recordFloats_ * sizeof(float));
    telemetry::count(telemetry::Counter::ObservationsRewritten);
    return;
  }

  const std::uint64_t slot = sampleIndex - samplesFlushed_;
  if (slot < samplesBuffered_) {
    // Still aggregated: overwrite the buffered record.
    std::memcpy(buffer_.data() + slot * recordFloats_, data,
                recordFloats_ * sizeof(float));
    ++stats_.samplesRewritten;
    telemetry::count(telemetry::Counter::ObservationsRewritten);
    return;
  }

  // Defensive gap fill: indices are expected to arrive densely, but if a
  // caller skips ahead the intervening records become zeros rather than
  // stale neighbours' data at a shifted displacement.
  while (samplesBuffered_ < slot) {
    buffer_.resize(buffer_.size() + recordFloats_, 0.0f);
    ++samplesBuffered_;
  }
  buffer_.insert(buffer_.end(), data, data + count);
  ++samplesBuffered_;
  stats_.recordsBuffered += count;
  if (samplesBuffered_ >= static_cast<std::uint64_t>(flushEverySamples_))
    flush();
}

void AggregatedWriter::resumeFrom(std::uint64_t sampleIndex) {
  flush();
  if (sampleIndex > samplesFlushed_) {
    samplesFlushed_ = sampleIndex;
    // The adopted prefix is durable (written by the earlier attempt) —
    // a new owner's observer must learn it before any fresh flush.
    notifyObserver();
  }
}

void AggregatedWriter::notifyObserver() {
  if (!observer_) {
    lowestRewritten_ = kNoRewrite;
    return;
  }
  const std::uint64_t rewritten = lowestRewritten_;
  lowestRewritten_ = kNoRewrite;
  observer_(samplesFlushed_, rewritten);
}

void AggregatedWriter::writeOne(std::uint64_t sampleIndex, const float* src) {
  // The file is laid out step-major: sample s occupies the float range
  // [s * stepFloatsGlobal, (s+1) * stepFloatsGlobal).
  const std::uint64_t offsetBytes =
      (sampleIndex * stepFloatsGlobal_ + rankOffsetFloats_) * sizeof(float);
  if (!fault::injectionEnabled()) {
    file_->writeAt(offsetBytes, std::span<const float>(src, recordFloats_));
    ++stats_.writeAttempts;
    return;
  }
  util::RetryStats rs;
  util::retryCall(
      retryPolicy_, "aggwriter.flush",
      [&] {
        file_->writeAt(offsetBytes,
                       std::span<const float>(src, recordFloats_));
      },
      &rs);
  stats_.writeAttempts += static_cast<std::uint64_t>(rs.attempts);
  stats_.writeRetries += static_cast<std::uint64_t>(rs.failures);
  telemetry::count(telemetry::Counter::WriteRetries,
                   static_cast<std::uint64_t>(rs.failures));
}

void AggregatedWriter::flush() {
  if (samplesBuffered_ == 0) return;
  telemetry::ScopedSpan span(telemetry::Phase::Output);
  Stopwatch watch;
  // Each buffered sample is written at its own displacement (one pwrite
  // per sample — the aggregation savings come from batching the *flushes*,
  // not from coalescing across steps, matching the paper's
  // buffer-then-flush).
  for (std::uint64_t s = 0; s < samplesBuffered_; ++s)
    writeOne(samplesFlushed_ + s, buffer_.data() + s * recordFloats_);
  samplesFlushed_ += samplesBuffered_;
  const std::uint64_t bytes = samplesBuffered_ * recordFloats_ * sizeof(float);
  stats_.bytesWritten += bytes;
  ++stats_.flushes;
  stats_.writeSeconds += watch.seconds();
  telemetry::count(telemetry::Counter::OutputBytes, bytes);
  samplesBuffered_ = 0;
  buffer_.clear();
  notifyObserver();
}

}  // namespace awp::io
