#include "io/contention.hpp"

#include <algorithm>
#include <cmath>

namespace awp::io {

FileSystemModel FileSystemModel::jaguarLustre() {
  return FileSystemModel{"Jaguar Lustre", 670, 33e6, 250e6, 650, 1.2};
}

FileSystemModel FileSystemModel::gpfsLike() {
  return FileSystemModel{"GPFS-like", 256, 60e6, 200e6, 4000, 1.1};
}

double FileSystemModel::aggregateBandwidth(int writers) const {
  if (writers <= 0) return 0.0;
  const double clientLimited = static_cast<double>(writers) *
                               perClientBandwidth;
  const double ostLimited = static_cast<double>(osts) * perOstBandwidth;
  const double raw = std::min(clientLimited, ostLimited);
  if (writers <= mdsComfortLimit) return raw;
  // Beyond the MDS comfort zone each extra opener costs super-linearly.
  const double excess = static_cast<double>(writers - mdsComfortLimit) /
                        static_cast<double>(mdsComfortLimit);
  return raw / (1.0 + std::pow(excess, mdsPenaltyExponent) * 4.0);
}

int FileSystemModel::bestWriterCount(int maxWriters) const {
  int best = 1;
  double bestBw = aggregateBandwidth(1);
  for (int w = 2; w <= maxWriters; w = std::max(w + 1, w * 11 / 10)) {
    const double bw = aggregateBandwidth(w);
    if (bw > bestBw) {
      bestBw = bw;
      best = w;
    }
  }
  return best;
}

StripeConfig stripePolicy(FileClass cls, const FileSystemModel& fs) {
  switch (cls) {
    case FileClass::LargeSharedInput:
      // Wide striping for the single large mesh/source files read through
      // MPI-IO by many processors simultaneously.
      return StripeConfig{std::min(fs.osts, fs.mdsComfortLimit), 4 << 20};
    case FileClass::PrePartitioned:
      // "The stripe size is set to unity for serial access of
      // pre-partitioned input files and checkpoints" (§IV.E).
      return StripeConfig{1, 1 << 20};
    case FileClass::SimulationOutput:
      return StripeConfig{fs.osts, 16 << 20};
  }
  return StripeConfig{};
}

}  // namespace awp::io
