#include "io/buddy.hpp"

#include "util/error.hpp"

namespace awp::io {

BuddyStore::BuddyStore(int nranks) {
  AWP_CHECK_MSG(nranks > 0, "BuddyStore requires at least one rank");
  slots_.resize(static_cast<std::size_t>(nranks));
}

void BuddyStore::storeSelf(int rank, std::uint64_t step,
                           std::span<const std::byte> blob) {
  AWP_CHECK_MSG(rank >= 0 && rank < size(), "storeSelf: rank out of range");
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = slots_[static_cast<std::size_t>(rank)];
  slot.self = Blob{step, std::vector<std::byte>(blob.begin(), blob.end())};
  ++stats_.selfStores;
}

void BuddyStore::storeReplica(int owner, std::uint64_t step,
                              std::span<const std::byte> blob) {
  AWP_CHECK_MSG(owner >= 0 && owner < size(),
                "storeReplica: owner out of range");
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = slots_[static_cast<std::size_t>(owner)];
  slot.replica = Blob{step, std::vector<std::byte>(blob.begin(), blob.end())};
  ++stats_.replicaStores;
}

void BuddyStore::noteDrop(int owner) {
  AWP_CHECK_MSG(owner >= 0 && owner < size(), "noteDrop: owner out of range");
  std::lock_guard<std::mutex> lock(mu_);
  // An old generation must not stand in for the one that was just lost:
  // a restore at the agreed (newer) step would miss and silently pick it
  // up at a later attempt. Disk is the correct fallback here.
  slots_[static_cast<std::size_t>(owner)].replica.reset();
  ++stats_.drops;
}

void BuddyStore::noteDeath(int rank) {
  AWP_CHECK_MSG(rank >= 0 && rank < size(), "noteDeath: rank out of range");
  std::lock_guard<std::mutex> lock(mu_);
  slots_[static_cast<std::size_t>(rank)].self.reset();
}

std::optional<std::uint64_t> BuddyStore::newestStep(int rank) const {
  AWP_CHECK_MSG(rank >= 0 && rank < size(), "newestStep: rank out of range");
  std::lock_guard<std::mutex> lock(mu_);
  const auto& slot = slots_[static_cast<std::size_t>(rank)];
  std::optional<std::uint64_t> newest;
  if (slot.self) newest = slot.self->step;
  if (slot.replica && (!newest || slot.replica->step > *newest))
    newest = slot.replica->step;
  return newest;
}

std::optional<std::vector<std::byte>> BuddyStore::restore(int rank,
                                                          std::uint64_t step) {
  AWP_CHECK_MSG(rank >= 0 && rank < size(), "restore: rank out of range");
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = slots_[static_cast<std::size_t>(rank)];
  if (slot.self && slot.self->step == step) {
    ++stats_.restoresFromSelf;
    return slot.self->bytes;
  }
  if (slot.replica && slot.replica->step == step) {
    ++stats_.restoresFromReplica;
    return slot.replica->bytes;
  }
  return std::nullopt;
}

void BuddyStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& slot : slots_) {
    slot.self.reset();
    slot.replica.reset();
  }
}

BuddyStore::Stats BuddyStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace awp::io
